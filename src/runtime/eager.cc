#include "runtime/eager.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/date_util.h"
#include "common/string_util.h"
#include "engine/expr/expr.h"  // AppendEncodedValue for hash keys

namespace pytond::runtime::eager {

namespace {

std::vector<double> AsDoubles(const Column& c) {
  size_t n = c.size();
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = c.Get(i).ToDouble();
  return out;
}

std::string RowKey(const Table& t, const std::vector<int>& cols, size_t row) {
  std::string key;
  for (int c : cols) engine::AppendEncodedValue(t.column(c), row, &key);
  return key;
}

Result<std::vector<int>> ResolveCols(const Table& t,
                                     const std::vector<std::string>& names) {
  std::vector<int> out;
  for (const std::string& n : names) {
    int i = t.schema().Find(n);
    if (i < 0) return Status::NotFound("column '" + n + "'");
    out.push_back(i);
  }
  return out;
}

}  // namespace

Column Broadcast(const Value& v, size_t n, DataType type_hint) {
  DataType t = v.is_null() ? type_hint : v.type();
  Column c(t);
  c.Reserve(n);
  for (size_t i = 0; i < n; ++i) c.Append(v);
  return c;
}

Result<Column> BinaryOp(const std::string& op, const Column& l,
                        const Column& r) {
  size_t n = l.size();
  if (r.size() != n) {
    return Status::InvalidArgument("series length mismatch");
  }
  auto cmp_result = [&](auto cmp) {
    std::vector<uint8_t> out(n);
    bool strings = l.type() == DataType::kString;
    for (size_t i = 0; i < n; ++i) {
      if (!l.IsValid(i) || !r.IsValid(i)) {
        out[i] = 0;
        continue;
      }
      if (strings) {
        out[i] = cmp(l.strings()[i].compare(r.type() == DataType::kString
                                                ? r.strings()[i]
                                                : r.Get(i).ToString()),
                     0);
      } else if (r.type() == DataType::kString) {
        // date vs string literal comparison
        auto d = date_util::Parse(r.strings()[i]);
        double rv = d.ok() ? static_cast<double>(*d) : 0;
        double lv = l.Get(i).ToDouble();
        out[i] = cmp(lv < rv ? -1 : (lv > rv ? 1 : 0), 0);
      } else {
        double lv = l.Get(i).ToDouble(), rv = r.Get(i).ToDouble();
        out[i] = cmp(lv < rv ? -1 : (lv > rv ? 1 : 0), 0);
      }
    }
    return Column::Bool(std::move(out));
  };
  if (op == "==") return cmp_result([](int c, int) { return c == 0; });
  if (op == "!=") return cmp_result([](int c, int) { return c != 0; });
  if (op == "<") return cmp_result([](int c, int) { return c < 0; });
  if (op == "<=") return cmp_result([](int c, int) { return c <= 0; });
  if (op == ">") return cmp_result([](int c, int) { return c > 0; });
  if (op == ">=") return cmp_result([](int c, int) { return c >= 0; });
  if (op == "&" || op == "|") {
    std::vector<uint8_t> out(n);
    const auto& a = l.bools();
    const auto& b = r.bools();
    for (size_t i = 0; i < n; ++i) {
      uint8_t av = l.IsValid(i) ? a[i] : 0;
      uint8_t bv = r.IsValid(i) ? b[i] : 0;
      out[i] = op == "&" ? (av & bv) : (av | bv);
    }
    return Column::Bool(std::move(out));
  }
  // Arithmetic: int64 stays integral for + - * with both int.
  bool both_int =
      l.type() == DataType::kInt64 && r.type() == DataType::kInt64;
  if (both_int && (op == "+" || op == "-" || op == "*" || op == "%")) {
    std::vector<int64_t> out(n);
    const auto& a = l.ints();
    const auto& b = r.ints();
    for (size_t i = 0; i < n; ++i) {
      if (op == "+") out[i] = a[i] + b[i];
      else if (op == "-") out[i] = a[i] - b[i];
      else if (op == "*") out[i] = a[i] * b[i];
      else out[i] = b[i] == 0 ? 0 : a[i] % b[i];
    }
    return Column::Int64(std::move(out));
  }
  std::vector<double> a = AsDoubles(l), b = AsDoubles(r);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    if (op == "+") out[i] = a[i] + b[i];
    else if (op == "-") out[i] = a[i] - b[i];
    else if (op == "*") out[i] = a[i] * b[i];
    else if (op == "/" || op == "//") out[i] = b[i] == 0 ? 0 : a[i] / b[i];
    else if (op == "%") out[i] = b[i] == 0 ? 0 : std::fmod(a[i], b[i]);
    else if (op == "**") out[i] = std::pow(a[i], b[i]);
    else return Status::Unsupported("operator '" + op + "'");
  }
  return Column::Float64(std::move(out));
}

Table Filter(const Table& t, const Column& mask) {
  std::vector<uint32_t> keep;
  const auto& b = mask.bools();
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask.IsValid(i) && b[i]) keep.push_back(static_cast<uint32_t>(i));
  }
  return t.Gather(keep);
}

Result<Table> Project(const Table& t, const std::vector<std::string>& cols) {
  PYTOND_ASSIGN_OR_RETURN(std::vector<int> idx, ResolveCols(t, cols));
  Table out;
  for (size_t i = 0; i < idx.size(); ++i) {
    PYTOND_RETURN_IF_ERROR(out.AddColumn(cols[i], t.column(idx[i])));
  }
  return out;
}

Result<Table> Merge(const Table& l, const Table& r,
                    const std::vector<std::string>& lkeys,
                    const std::vector<std::string>& rkeys,
                    const std::string& how) {
  bool same_keys = lkeys == rkeys;
  std::vector<int> lk, rk;
  if (how != "cross") {
    PYTOND_ASSIGN_OR_RETURN(lk, ResolveCols(l, lkeys));
    PYTOND_ASSIGN_OR_RETURN(rk, ResolveCols(r, rkeys));
  }
  // Output schema per Pandas naming.
  auto overlaps = [&](const std::string& c) {
    return l.schema().Find(c) >= 0 && r.schema().Find(c) >= 0;
  };
  auto is_key = [](const std::vector<std::string>& ks, const std::string& c) {
    return std::count(ks.begin(), ks.end(), c) > 0;
  };

  std::vector<uint32_t> li, ri;          // matched pairs
  std::vector<uint32_t> l_only, r_only;  // outer padding
  if (how == "cross") {
    for (size_t i = 0; i < l.num_rows(); ++i) {
      for (size_t j = 0; j < r.num_rows(); ++j) {
        li.push_back(static_cast<uint32_t>(i));
        ri.push_back(static_cast<uint32_t>(j));
      }
    }
  } else {
    std::unordered_map<std::string, std::vector<uint32_t>> ht;
    for (size_t j = 0; j < r.num_rows(); ++j) {
      ht[RowKey(r, rk, j)].push_back(static_cast<uint32_t>(j));
    }
    std::vector<uint8_t> r_matched(r.num_rows(), 0);
    for (size_t i = 0; i < l.num_rows(); ++i) {
      auto it = ht.find(RowKey(l, lk, i));
      if (it == ht.end()) {
        if (how == "left" || how == "outer") {
          l_only.push_back(static_cast<uint32_t>(i));
        }
        continue;
      }
      for (uint32_t j : it->second) {
        li.push_back(static_cast<uint32_t>(i));
        ri.push_back(j);
        r_matched[j] = 1;
      }
    }
    if (how == "right" || how == "outer") {
      for (size_t j = 0; j < r.num_rows(); ++j) {
        if (!r_matched[j]) r_only.push_back(static_cast<uint32_t>(j));
      }
    }
  }

  Table out;
  size_t pad_l = l_only.size(), pad_r = r_only.size();
  for (size_t c = 0; c < l.num_columns(); ++c) {
    const std::string& name = l.schema().names[c];
    bool shared_key = same_keys && how != "cross" && is_key(lkeys, name);
    std::string out_name =
        (!shared_key && overlaps(name)) ? name + "_x" : name;
    Column col = l.column(c).Gather(li);
    for (uint32_t i : l_only) col.AppendFrom(l.column(c), i);
    for (size_t i = 0; i < pad_r; ++i) {
      // For an outer merge the shared key takes the right value.
      if (shared_key) {
        size_t rpos = static_cast<size_t>(r.schema().Find(name));
        col.AppendFrom(r.column(rpos), r_only[i]);
      } else {
        col.AppendNull();
      }
    }
    PYTOND_RETURN_IF_ERROR(out.AddColumn(out_name, std::move(col)));
  }
  for (size_t c = 0; c < r.num_columns(); ++c) {
    const std::string& name = r.schema().names[c];
    if (same_keys && how != "cross" && is_key(rkeys, name)) continue;
    std::string out_name = overlaps(name) ? name + "_y" : name;
    Column col = r.column(c).Gather(ri);
    for (size_t i = 0; i < pad_l; ++i) col.AppendNull();
    for (uint32_t j : r_only) col.AppendFrom(r.column(c), j);
    PYTOND_RETURN_IF_ERROR(out.AddColumn(out_name, std::move(col)));
  }
  return out;
}

Result<Table> GroupByAgg(const Table& t, const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs) {
  PYTOND_ASSIGN_OR_RETURN(std::vector<int> kcols, ResolveCols(t, keys));
  struct State {
    uint32_t rep;
    std::vector<double> dsum;
    std::vector<int64_t> isum;
    std::vector<int64_t> count;
    std::vector<Value> extreme;
    std::vector<std::unordered_set<std::string>> distinct;
    std::vector<bool> has;
  };
  std::vector<int> acols;
  for (const AggSpec& a : aggs) {
    int i = t.schema().Find(a.column);
    if (i < 0) return Status::NotFound("agg column '" + a.column + "'");
    acols.push_back(i);
  }
  std::unordered_map<std::string, State> groups;
  std::vector<std::string> order;  // deterministic first-seen order
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::string key = RowKey(t, kcols, row);
    auto [it, inserted] = groups.try_emplace(key);
    State& s = it->second;
    if (inserted) {
      s.rep = static_cast<uint32_t>(row);
      s.dsum.assign(aggs.size(), 0);
      s.isum.assign(aggs.size(), 0);
      s.count.assign(aggs.size(), 0);
      s.extreme.assign(aggs.size(), Value::Null());
      s.distinct.resize(aggs.size());
      s.has.assign(aggs.size(), false);
      order.push_back(key);
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const Column& col = t.column(acols[a]);
      if (!col.IsValid(row)) continue;
      const std::string& fn = aggs[a].fn;
      if (fn == "count") {
        ++s.count[a];
      } else if (fn == "nunique") {
        std::string k2;
        engine::AppendEncodedValue(col, row, &k2);
        s.distinct[a].insert(std::move(k2));
      } else if (fn == "sum" || fn == "mean") {
        if (col.type() == DataType::kInt64) s.isum[a] += col.ints()[row];
        else s.dsum[a] += col.Get(row).ToDouble();
        ++s.count[a];
        s.has[a] = true;
      } else {  // min / max
        Value v = col.Get(row);
        if (!s.has[a]) {
          s.extreme[a] = v;
          s.has[a] = true;
        } else {
          bool less = v.type() == DataType::kString
                          ? v.AsString() < s.extreme[a].AsString()
                          : v.ToDouble() < s.extreme[a].ToDouble();
          if ((fn == "min") == less) s.extreme[a] = v;
        }
      }
    }
  }
  // Assemble.
  Table out;
  std::vector<uint32_t> reps;
  for (const std::string& k : order) reps.push_back(groups[k].rep);
  for (size_t c = 0; c < kcols.size(); ++c) {
    PYTOND_RETURN_IF_ERROR(
        out.AddColumn(keys[c], t.column(kcols[c]).Gather(reps)));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    const std::string& fn = aggs[a].fn;
    DataType at = t.column(acols[a]).type();
    DataType ot = fn == "count" || fn == "nunique" ? DataType::kInt64
                  : fn == "mean"                   ? DataType::kFloat64
                  : fn == "sum" ? (at == DataType::kInt64 ? DataType::kInt64
                                                          : DataType::kFloat64)
                                : at;
    Column col(ot);
    for (const std::string& k : order) {
      const State& s = groups[k];
      if (fn == "count") {
        col.Append(Value::Int64(s.count[a]));
      } else if (fn == "nunique") {
        col.Append(Value::Int64(static_cast<int64_t>(s.distinct[a].size())));
      } else if (fn == "sum") {
        if (!s.has[a]) col.AppendNull();
        else if (at == DataType::kInt64) col.Append(Value::Int64(s.isum[a]));
        else col.Append(Value::Float64(s.dsum[a]));
      } else if (fn == "mean") {
        if (s.count[a] == 0) col.AppendNull();
        else col.Append(Value::Float64(
            (s.dsum[a] + static_cast<double>(s.isum[a])) /
            static_cast<double>(s.count[a])));
      } else {
        col.Append(s.extreme[a]);
      }
    }
    PYTOND_RETURN_IF_ERROR(out.AddColumn(aggs[a].out, std::move(col)));
  }
  if (keys.empty() && out.num_rows() == 0 && t.num_rows() == 0) {
    // Global aggregate over empty input: one row of nulls/zeros.
    std::vector<Value> row;
    for (const AggSpec& a : aggs) {
      row.push_back(a.fn == "count" || a.fn == "nunique"
                        ? Value::Int64(0)
                        : Value::Null());
    }
    PYTOND_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> SortValues(const Table& t, const std::vector<std::string>& keys,
                         const std::vector<bool>& ascending) {
  PYTOND_ASSIGN_OR_RETURN(std::vector<int> kcols, ResolveCols(t, keys));
  std::vector<uint32_t> idx(t.num_rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < kcols.size(); ++k) {
      const Column& c = t.column(kcols[k]);
      Value va = c.Get(a), vb = c.Get(b);
      int cmp;
      if (va.is_null() || vb.is_null()) {
        cmp = static_cast<int>(vb.is_null()) - static_cast<int>(va.is_null());
        cmp = -cmp;  // nulls first
      } else if (va.type() == DataType::kString) {
        cmp = va.AsString().compare(vb.AsString());
      } else {
        double da = va.ToDouble(), db = vb.ToDouble();
        cmp = da < db ? -1 : (da > db ? 1 : 0);
      }
      if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  return t.Gather(idx);
}

Table Head(const Table& t, size_t n) {
  std::vector<uint32_t> idx(std::min(n, t.num_rows()));
  std::iota(idx.begin(), idx.end(), 0);
  return t.Gather(idx);
}

Result<Table> Unique(const Table& t, const std::string& column) {
  int c = t.schema().Find(column);
  if (c < 0) return Status::NotFound("column '" + column + "'");
  std::unordered_set<std::string> seen;
  std::vector<uint32_t> keep;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    std::string key;
    engine::AppendEncodedValue(t.column(c), i, &key);
    if (seen.insert(std::move(key)).second) {
      keep.push_back(static_cast<uint32_t>(i));
    }
  }
  Table out;
  PYTOND_RETURN_IF_ERROR(out.AddColumn(column, t.column(c).Gather(keep)));
  return out;
}

Result<Column> IsinMask(const Column& probe, const Column& values) {
  std::unordered_set<std::string> set;
  for (size_t i = 0; i < values.size(); ++i) {
    std::string k;
    engine::AppendEncodedValue(values, i, &k);
    set.insert(std::move(k));
  }
  std::vector<uint8_t> out(probe.size());
  for (size_t i = 0; i < probe.size(); ++i) {
    std::string k;
    engine::AppendEncodedValue(probe, i, &k);
    out[i] = set.count(k) > 0;
  }
  return Column::Bool(std::move(out));
}

Result<Table> PivotTable(const Table& t, const std::string& index,
                         const std::string& columns, const std::string& values,
                         const std::vector<std::string>& distinct_values) {
  int ic = t.schema().Find(index);
  int cc = t.schema().Find(columns);
  int vc = t.schema().Find(values);
  if (ic < 0 || cc < 0 || vc < 0) {
    return Status::NotFound("pivot_table column");
  }
  std::unordered_map<std::string, size_t> group_of;
  std::vector<uint32_t> reps;
  std::vector<std::vector<double>> sums;
  std::unordered_map<std::string, size_t> col_of;
  for (size_t i = 0; i < distinct_values.size(); ++i) {
    col_of[distinct_values[i]] = i;
  }
  for (size_t row = 0; row < t.num_rows(); ++row) {
    std::string key;
    engine::AppendEncodedValue(t.column(ic), row, &key);
    auto [it, inserted] = group_of.try_emplace(key, reps.size());
    if (inserted) {
      reps.push_back(static_cast<uint32_t>(row));
      sums.emplace_back(distinct_values.size(), 0.0);
    }
    auto cit = col_of.find(t.column(cc).Get(row).ToString());
    if (cit != col_of.end()) {
      sums[it->second][cit->second] += t.column(vc).Get(row).ToDouble();
    }
  }
  Table out;
  PYTOND_RETURN_IF_ERROR(out.AddColumn(index, t.column(ic).Gather(reps)));
  for (size_t c = 0; c < distinct_values.size(); ++c) {
    std::vector<double> col(reps.size());
    for (size_t g = 0; g < reps.size(); ++g) col[g] = sums[g][c];
    PYTOND_RETURN_IF_ERROR(out.AddColumn("p_" + distinct_values[c],
                                         Column::Float64(std::move(col))));
  }
  return out;
}

// ------------------------------------------------------------ einsum

namespace {

/// Reads a dense table as a row-major matrix (skipping a leading id col).
std::vector<std::vector<double>> ToMatrix(const Table& t) {
  size_t start = !t.schema().names.empty() && t.schema().names[0] == "id"
                     ? 1
                     : 0;
  size_t rows = t.num_rows(), cols = t.num_columns() - start;
  std::vector<std::vector<double>> m(rows, std::vector<double>(cols));
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> col = AsDoubles(t.column(start + c));
    for (size_t r = 0; r < rows; ++r) m[r][c] = col[r];
  }
  return m;
}

Result<Table> FromMatrix(const std::vector<std::vector<double>>& m) {
  Table out;
  std::vector<int64_t> ids(m.size());
  std::iota(ids.begin(), ids.end(), 0);
  PYTOND_RETURN_IF_ERROR(out.AddColumn("id", Column::Int64(std::move(ids))));
  size_t cols = m.empty() ? 0 : m[0].size();
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> col(m.size());
    for (size_t r = 0; r < m.size(); ++r) col[r] = m[r][c];
    std::string col_name = "c";
    col_name += std::to_string(c);
    PYTOND_RETURN_IF_ERROR(
        out.AddColumn(col_name, Column::Float64(std::move(col))));
  }
  return out;
}

Result<Table> Scalar(double v) {
  Table out;
  PYTOND_RETURN_IF_ERROR(out.AddColumn("c0", Column::Float64({v})));
  return out;
}

}  // namespace

Result<Table> EinsumDense(const std::string& spec,
                          const std::vector<const Table*>& operands) {
  auto m0 = ToMatrix(*operands[0]);
  if (spec == "i->" || spec == "ij->") {
    double s = 0;
    for (const auto& row : m0) {
      for (double v : row) s += v;
    }
    return Scalar(s);
  }
  if (spec == "ij->i") {
    std::vector<std::vector<double>> out(m0.size(),
                                         std::vector<double>(1, 0.0));
    for (size_t r = 0; r < m0.size(); ++r) {
      for (double v : m0[r]) out[r][0] += v;
    }
    return FromMatrix(out);
  }
  if (spec == "ij->j") {
    size_t cols = m0.empty() ? 0 : m0[0].size();
    std::vector<std::vector<double>> out(cols, std::vector<double>(1, 0.0));
    for (const auto& row : m0) {
      for (size_t c = 0; c < cols; ++c) out[c][0] += row[c];
    }
    return FromMatrix(out);
  }
  if (spec == "ii->i") {
    std::vector<std::vector<double>> out;
    for (size_t r = 0; r < m0.size(); ++r) {
      if (r < m0[r].size()) out.push_back({m0[r][r]});
    }
    return FromMatrix(out);
  }
  auto m1 = operands.size() > 1 ? ToMatrix(*operands[1])
                                : std::vector<std::vector<double>>{};
  if (spec == "i,i->") {
    double s = 0;
    for (size_t r = 0; r < m0.size() && r < m1.size(); ++r) {
      s += m0[r][0] * m1[r][0];
    }
    return Scalar(s);
  }
  if (spec == "ij,ij->ij") {
    std::vector<std::vector<double>> out = m0;
    for (size_t r = 0; r < out.size() && r < m1.size(); ++r) {
      for (size_t c = 0; c < out[r].size(); ++c) out[r][c] *= m1[r][c];
    }
    return FromMatrix(out);
  }
  if (spec == "ij,ik->jk") {
    size_t n = m0.empty() ? 0 : m0[0].size();
    size_t m = m1.empty() ? 0 : m1[0].size();
    std::vector<std::vector<double>> out(n, std::vector<double>(m, 0.0));
    for (size_t r = 0; r < m0.size() && r < m1.size(); ++r) {
      for (size_t j = 0; j < n; ++j) {
        for (size_t k = 0; k < m; ++k) out[j][k] += m0[r][j] * m1[r][k];
      }
    }
    return FromMatrix(out);
  }
  if (spec == "ij,j->i") {
    std::vector<std::vector<double>> out(m0.size(),
                                         std::vector<double>(1, 0.0));
    for (size_t r = 0; r < m0.size(); ++r) {
      for (size_t c = 0; c < m0[r].size() && c < m1.size(); ++c) {
        out[r][0] += m0[r][c] * m1[c][0];
      }
    }
    return FromMatrix(out);
  }
  if (spec == "ij,jk->ik") {
    size_t p = m0.empty() ? 0 : m0[0].size();
    size_t k = m1.empty() ? 0 : m1[0].size();
    std::vector<std::vector<double>> out(m0.size(),
                                         std::vector<double>(k, 0.0));
    for (size_t r = 0; r < m0.size(); ++r) {
      for (size_t j = 0; j < p && j < m1.size(); ++j) {
        for (size_t c = 0; c < k; ++c) out[r][c] += m0[r][j] * m1[j][c];
      }
    }
    return FromMatrix(out);
  }
  return Status::Unsupported("eager dense einsum '" + spec + "'");
}

Result<Table> EinsumSparse(const std::string& spec,
                           const std::vector<const Table*>& operands) {
  // Parse "ab,cd->ef" style binary spec on COO tables.
  size_t arrow = spec.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("bad spec");
  }
  std::string lhs = spec.substr(0, arrow), out_idx = spec.substr(arrow + 2);
  std::vector<std::string> inputs = string_util::Split(lhs, ',');
  if (inputs.size() != operands.size()) {
    return Status::InvalidArgument("operand count mismatch");
  }
  // Value of each letter per nonzero; accumulate products grouped by
  // output letters. Build letter -> (operand, column) map.
  std::unordered_map<std::string, double> acc;
  std::unordered_map<std::string, std::vector<int64_t>> acc_keys;
  auto index_cols = [&](size_t op) {
    std::vector<const std::vector<int64_t>*> cols;
    for (size_t i = 0; i + 1 < operands[op]->num_columns(); ++i) {
      cols.push_back(&operands[op]->column(i).ints());
    }
    return cols;
  };
  if (operands.size() == 1) {
    auto idx = index_cols(0);
    const Column& val = operands[0]->column(operands[0]->num_columns() - 1);
    std::vector<double> vals = AsDoubles(val);
    for (size_t r = 0; r < operands[0]->num_rows(); ++r) {
      std::unordered_map<char, int64_t> binding;
      bool ok = true;
      for (size_t i = 0; i < inputs[0].size(); ++i) {
        char c = inputs[0][i];
        auto it = binding.find(c);
        if (it != binding.end() && it->second != (*idx[i])[r]) {
          ok = false;
          break;
        }
        binding[c] = (*idx[i])[r];
      }
      if (!ok) continue;
      std::string key;
      std::vector<int64_t> kv;
      for (char c : out_idx) {
        kv.push_back(binding[c]);
        key += std::to_string(binding[c]) + "|";
      }
      acc[key] += vals[r];
      acc_keys.emplace(key, kv);
    }
  } else {
    // Binary: hash-join on shared letters.
    std::string shared;
    for (char c : inputs[0]) {
      if (inputs[1].find(c) != std::string::npos) shared += c;
    }
    auto idx0 = index_cols(0), idx1 = index_cols(1);
    std::vector<double> v0 =
        AsDoubles(operands[0]->column(operands[0]->num_columns() - 1));
    std::vector<double> v1 =
        AsDoubles(operands[1]->column(operands[1]->num_columns() - 1));
    std::unordered_map<std::string, std::vector<uint32_t>> ht;
    for (size_t r = 0; r < operands[1]->num_rows(); ++r) {
      std::string key;
      for (char c : shared) {
        size_t pos = inputs[1].find(c);
        key += std::to_string((*idx1[pos])[r]) + "|";
      }
      ht[key].push_back(static_cast<uint32_t>(r));
    }
    for (size_t r = 0; r < operands[0]->num_rows(); ++r) {
      std::string key;
      for (char c : shared) {
        size_t pos = inputs[0].find(c);
        key += std::to_string((*idx0[pos])[r]) + "|";
      }
      auto it = ht.find(key);
      if (it == ht.end()) continue;
      for (uint32_t rr : it->second) {
        std::string okey;
        std::vector<int64_t> kv;
        for (char c : out_idx) {
          size_t p0 = inputs[0].find(c);
          int64_t v = p0 != std::string::npos
                          ? (*idx0[p0])[r]
                          : (*idx1[inputs[1].find(c)])[rr];
          kv.push_back(v);
          okey += std::to_string(v) + "|";
        }
        acc[okey] += v0[r] * v1[rr];
        acc_keys.emplace(okey, kv);
      }
    }
  }
  Table out;
  std::vector<std::vector<int64_t>> kcols(out_idx.size());
  std::vector<double> vcol;
  for (const auto& [key, sum] : acc) {
    const auto& kv = acc_keys[key];
    for (size_t i = 0; i < kv.size(); ++i) kcols[i].push_back(kv[i]);
    vcol.push_back(sum);
  }
  for (size_t i = 0; i < out_idx.size(); ++i) {
    std::string name = out_idx.size() == 1 ? "row_id"
                       : i == 0            ? "row_id"
                                           : "col_id";
    PYTOND_RETURN_IF_ERROR(
        out.AddColumn(name, Column::Int64(std::move(kcols[i]))));
  }
  PYTOND_RETURN_IF_ERROR(out.AddColumn("val", Column::Float64(std::move(vcol))));
  return out;
}

}  // namespace pytond::runtime::eager
