#ifndef PYTOND_RUNTIME_EAGER_H_
#define PYTOND_RUNTIME_EAGER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace pytond::runtime {

/// Eager, single-threaded DataFrame operations that materialize every
/// intermediate — the stand-in for the paper's Python/Pandas/NumPy
/// baseline. Each function performs one API call's worth of work with no
/// cross-operation fusion (the two cost drivers the paper attributes to
/// the Python baseline).
namespace eager {

/// Elementwise binary op over two equal-length columns (or column/scalar
/// via ConstColumn). `op` is the mini-Python operator spelling.
Result<Column> BinaryOp(const std::string& op, const Column& l,
                        const Column& r);

/// Materializes a scalar as a column of length n.
Column Broadcast(const Value& v, size_t n, DataType type_hint);

/// Rows where mask (bool column) is true.
Table Filter(const Table& t, const Column& mask);

/// Column projection by names.
Result<Table> Project(const Table& t, const std::vector<std::string>& cols);

/// Pandas-style merge. `how` in {inner,left,right,outer,cross}; output
/// follows Pandas column naming (_x/_y suffixes, shared keys once).
Result<Table> Merge(const Table& l, const Table& r,
                    const std::vector<std::string>& lkeys,
                    const std::vector<std::string>& rkeys,
                    const std::string& how);

/// One aggregation: output name, input column, fn in
/// {sum,min,max,mean,count,nunique}.
struct AggSpec {
  std::string out;
  std::string column;
  std::string fn;
};

/// Hash group-by + aggregate; keys may be empty (global aggregate).
Result<Table> GroupByAgg(const Table& t, const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs);

/// Multi-key sort.
Result<Table> SortValues(const Table& t, const std::vector<std::string>& keys,
                         const std::vector<bool>& ascending);

Table Head(const Table& t, size_t n);

/// Distinct values of one column.
Result<Table> Unique(const Table& t, const std::string& column);

/// Membership mask of t[col] in values of `other_col`.
Result<Column> IsinMask(const Column& probe, const Column& values);

/// Pivot table (paper §II-A): index column, spreading column, value
/// column, sum aggregation over the given distinct spread values.
Result<Table> PivotTable(const Table& t, const std::string& index,
                         const std::string& columns, const std::string& values,
                         const std::vector<std::string>& distinct_values);

/// Dense einsum over tables whose data columns (all but a leading "id",
/// when present) are numeric. Supports the kernel set of the paper's
/// workloads. Output tables carry a leading id column when the result has
/// rows.
Result<Table> EinsumDense(const std::string& spec,
                          const std::vector<const Table*>& operands);

/// Sparse COO einsum ((row_id[, col_id], val) tables), general binary.
Result<Table> EinsumSparse(const std::string& spec,
                           const std::vector<const Table*>& operands);

}  // namespace eager
}  // namespace pytond::runtime

#endif  // PYTOND_RUNTIME_EAGER_H_
