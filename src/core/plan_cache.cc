#include "core/plan_cache.h"

namespace pytond {

PlanCache::PlanCache(obs::MetricsRegistry* metrics)
    : metrics_(metrics),
      hits_total_(&metrics->counter("tond_cache_plan_hits_total")),
      misses_total_(&metrics->counter("tond_cache_plan_misses_total")),
      entries_(&metrics->gauge("tond_cache_plan_entries")) {}

std::shared_ptr<const frontend::Compiled> PlanCache::Lookup(
    const std::string& key) {
  const bool record = metrics_->enabled();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    if (record) hits_total_->Add(1);
    return it->second;
  }
  ++misses_;
  if (record) misses_total_->Add(1);
  return nullptr;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const frontend::Compiled> compiled) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_[key] = std::move(compiled);
  if (metrics_->enabled()) {
    entries_->Set(static_cast<int64_t>(cache_.size()));
  }
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = cache_.size();
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace pytond
