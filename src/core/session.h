#ifndef PYTOND_CORE_SESSION_H_
#define PYTOND_CORE_SESSION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "engine/database.h"
#include "frontend/compiler.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "runtime/interpreter.h"

namespace pytond {

/// How to execute a @pytond function.
struct RunOptions {
  /// Backend profile ("duck-like" vectorized, "hyper-like" compiled,
  /// "lingo-like" research); also selects the SQL dialect.
  engine::BackendProfile profile = engine::BackendProfile::kVectorized;
  int num_threads = 1;
  /// Push-based pipelined execution (QueryOptions::pipeline). Execution-
  /// only, like num_threads: it never changes the compiled artifact, so
  /// it is NOT part of the plan-cache key.
  bool pipeline = engine::PipelineEnabledDefault();
  /// TondIR optimization preset 0..4 (0 reproduces the paper's
  /// "Grizzly-simulated" competitor).
  int optimization_level = 4;
  /// Serve Run/RunProfiled from the session's compiled-plan cache (keyed
  /// on normalized source + profile + optimization level + deep_lints);
  /// repeated queries skip parse/translate/optimize/sqlgen entirely.
  bool use_plan_cache = true;
  /// Run the dataflow deep-lint tier (T020-T032) during compilation.
  /// Warnings are stored on the compiled artifact (Compiled::diagnostics)
  /// so plan-cache hits re-surface them instead of dropping them.
  bool deep_lints = false;
  /// Run the frontend translatability analyzer (F001-F015) before
  /// translation. F-errors abort the compile with a source-located
  /// message; F-warnings join Compiled::diagnostics (and the plan-cache
  /// `warnings` counter) ahead of the T-series. Participates in the
  /// plan-cache key.
  bool frontend_checks = true;
  /// Optional end-to-end trace: compile phases, optimizer passes, sqlgen,
  /// CTE materialization, and executor operators all record spans here.
  /// Null (the default) keeps every instrumentation point a null check.
  obs::TraceCollector* trace = nullptr;
  /// Optional peak-memory observer, forwarded to QueryOptions::mem: the
  /// executed query's accountant peak lands here via ObservePeak.
  obs::MemoryAccountant* mem = nullptr;
};

/// Compiled-plan cache counters (cumulative per session).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
};

/// Run result with the flattened trace summary: compile-ms broken down by
/// phase and optimizer pass, exec-ms by operator (see obs::QueryProfile).
struct ProfiledRun {
  std::shared_ptr<const Table> table;
  obs::QueryProfile profile;
};

/// The PyTond entry point: owns the database (catalog + engine), compiles
/// mini-Python data-science functions to SQL, and executes them — or runs
/// them eagerly through the interpreter baseline.
///
/// Typical use:
///   Session session;
///   session.db().CreateTable("t", table, constraints);
///   auto result = session.Run(R"(
///     @pytond()
///     def q(t):
///         v = t[t.x > 3]
///         return v
///   )");
///
/// Concurrency: once the catalog is populated, Compile/CompileCached/Run/
/// RunProfiled/Execute/RunBaseline are safe to call from many threads at
/// once. Queries share the database's worker pool and this session's
/// compiled-plan cache; each call carries its own trace collector (or
/// none), so traces never mix across concurrent queries.
class Session {
 public:
  Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  engine::Database& db() { return db_; }
  const engine::Database& db() const { return db_; }

  /// Compiles the (single) @pytond function in `source` to SQL without
  /// executing it.
  Result<frontend::Compiled> Compile(const std::string& source,
                                     const RunOptions& options = {}) const;

  /// Compile through the session's plan cache: a hit (same normalized
  /// source + profile + optimization level) returns the cached artifact
  /// and skips the whole frontend. Misses compile, then publish. With
  /// options.trace attached, records a "plan_cache" span whose `hit`
  /// counter is 0/1 and whose `warnings` counter re-emits the number of
  /// stored verifier diagnostics (hits included, so cached warnings are
  /// never silently swallowed).
  Result<std::shared_ptr<const frontend::Compiled>> CompileCached(
      const std::string& source, const RunOptions& options = {});

  /// Compiles and executes through the SQL engine.
  Result<std::shared_ptr<const Table>> Run(const std::string& source,
                                           const RunOptions& options = {});

  /// Compiles and executes with tracing forced on, returning the table
  /// plus a QueryProfile (the paper's compile-time vs. execution-time
  /// split). Uses options.trace when the caller attached a collector,
  /// otherwise a run-local one.
  Result<ProfiledRun> RunProfiled(const std::string& source,
                                  const RunOptions& options = {});

  /// Executes a previously compiled function's SQL.
  Result<std::shared_ptr<const Table>> Execute(const frontend::Compiled& c,
                                               const RunOptions& options = {});

  /// Runs the same source through the eager interpreter — the paper's
  /// Python/Pandas/NumPy baseline. Pass a collector to time it (its
  /// "eager" span feeds QueryProfile::eager_ms / SpeedupVsBaseline).
  Result<Table> RunBaseline(const std::string& source,
                            obs::TraceCollector* trace = nullptr) const;

  /// Plan-cache counters (thread-safe snapshot).
  PlanCacheStats plan_cache_stats() const;
  void ClearPlanCache();

 private:
  engine::Database db_;
  mutable std::mutex cache_mu_;
  std::map<std::string, std::shared_ptr<const frontend::Compiled>>
      plan_cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;

  // Hot-path metrics in the database's registry, resolved once.
  obs::Counter* runs_total_;
  obs::Counter* run_failures_total_;
  obs::Histogram* run_latency_ns_;
  obs::Counter* cache_hits_total_;
  obs::Counter* cache_misses_total_;
  obs::Gauge* cache_entries_;
};

}  // namespace pytond

#endif  // PYTOND_CORE_SESSION_H_
