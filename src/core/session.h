#ifndef PYTOND_CORE_SESSION_H_
#define PYTOND_CORE_SESSION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/plan_cache.h"
#include "engine/database.h"
#include "frontend/compiler.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "runtime/interpreter.h"

namespace pytond {

/// How to execute a @pytond function.
struct RunOptions {
  /// Backend profile ("duck-like" vectorized, "hyper-like" compiled,
  /// "lingo-like" research); also selects the SQL dialect.
  engine::BackendProfile profile = engine::BackendProfile::kVectorized;
  int num_threads = 1;
  /// Push-based pipelined execution (QueryOptions::pipeline). The compiled
  /// SQL is identical either way, but the mode participates in the
  /// plan-cache key (`|nopipe` marker) so a plan cached with pipelines on
  /// is never reused when TOND_PIPELINE=off and vice versa — execution-
  /// mode bugs must never hide behind a stale cache entry. num_threads
  /// stays execution-only.
  bool pipeline = engine::PipelineEnabledDefault();
  /// TondIR optimization preset 0..4 (0 reproduces the paper's
  /// "Grizzly-simulated" competitor).
  int optimization_level = 4;
  /// Serve Run/RunProfiled from the shared compiled-plan cache (keyed on
  /// normalized source + profile + optimization level + pipeline mode +
  /// deep_lints); repeated queries skip parse/translate/optimize/sqlgen
  /// entirely.
  bool use_plan_cache = true;
  /// Run the dataflow deep-lint tier (T020-T032) during compilation.
  /// Warnings are stored on the compiled artifact (Compiled::diagnostics)
  /// so plan-cache hits re-surface them instead of dropping them.
  bool deep_lints = false;
  /// Run the frontend translatability analyzer (F001-F015) before
  /// translation. F-errors abort the compile with a source-located
  /// message; F-warnings join Compiled::diagnostics (and the plan-cache
  /// `warnings` counter) ahead of the T-series. Participates in the
  /// plan-cache key.
  bool frontend_checks = true;
  /// Physical plan/pipeline verification (P-series), forwarded to
  /// QueryOptions::verify_plans: the bound plan, every optimizer pass,
  /// and the pipeline decomposition are structurally checked, failing
  /// the query with a stage-blamed Internal status on violation. On by
  /// default in debug/sanitizer builds, off in release unless
  /// TOND_VERIFY_PLANS=1. Prepared statements verify once per handle
  /// (first Execute) rather than per binding.
  bool verify_plans = engine::VerifyPlansDefault();
  /// Positional bindings for `$pN` placeholders in the compiled SQL,
  /// forwarded to QueryOptions::params. Set by PreparedStatement::Execute;
  /// plain Run/Compile paths leave it null. The caller keeps the vector
  /// alive for the duration of the call.
  const std::vector<Value>* params = nullptr;
  /// Optional end-to-end trace: compile phases, optimizer passes, sqlgen,
  /// CTE materialization, and executor operators all record spans here.
  /// Null (the default) keeps every instrumentation point a null check.
  obs::TraceCollector* trace = nullptr;
  /// Optional peak-memory observer, forwarded to QueryOptions::mem: the
  /// executed query's accountant peak lands here via ObservePeak.
  obs::MemoryAccountant* mem = nullptr;
};

/// Run result with the flattened trace summary: compile-ms broken down by
/// phase and optimizer pass, exec-ms by operator (see obs::QueryProfile).
struct ProfiledRun {
  std::shared_ptr<const Table> table;
  obs::QueryProfile profile;
};

class Session;

/// A compiled, possibly auto-parameterized statement handle returned by
/// Session::Prepare. Holds the cached artifact plus the literal values
/// extracted from the *prepared* source, so Execute() with no arguments
/// reproduces that source exactly while Execute(params) rebinds the
/// slots without recompiling. Handles stay valid as long as the Session
/// lives; Execute is safe to call from many threads at once.
class PreparedStatement {
 public:
  /// Executes with the default bindings (the literals extracted at
  /// Prepare time).
  Result<std::shared_ptr<const Table>> Execute() const;
  /// Executes with explicit bindings, one value per slot in `$pN` order.
  /// Bindings are type-checked against the slot types the plan was
  /// compiled with (int64 promotes to a float64 slot; anything else
  /// mismatched is an InvalidArgument before the engine runs).
  Result<std::shared_ptr<const Table>> Execute(
      const std::vector<Value>& params) const;

  const frontend::Compiled& compiled() const { return *compiled_; }
  /// Slot count (0 = nothing was parameterizable; the statement executes
  /// through the literal plan and ignores bindings' variation benefit).
  size_t num_params() const { return compiled_->params.size(); }
  /// True when the plan was compiled from the parameterized skeleton (a
  /// literal-path fallback keeps the statement executable but literal-
  /// keyed).
  bool parameterized() const { return parameterized_; }
  /// Default bindings = the literals the prepared source carried.
  const std::vector<Value>& defaults() const { return defaults_; }

 private:
  friend class Session;
  Session* session_ = nullptr;
  std::shared_ptr<const frontend::Compiled> compiled_;
  std::vector<Value> defaults_;
  RunOptions options_;
  bool parameterized_ = false;
  /// Verify-once ticket: every Execute shares the same skeleton plan, so
  /// the first execution runs the physical verifier and later ones skip
  /// it (shared_ptr because statements are copyable handles — copies of
  /// one PREPARE share the ticket, not re-verify).
  std::shared_ptr<std::atomic<bool>> verified_ =
      std::make_shared<std::atomic<bool>>(false);
};

/// The PyTond entry point: compiles mini-Python data-science functions to
/// SQL against a database's catalog and executes them — or runs them
/// eagerly through the interpreter baseline.
///
/// Typical use:
///   Session session;
///   session.db().CreateTable("t", table, constraints);
///   auto result = session.Run(R"(
///     @pytond()
///     def q(t):
///         v = t[t.x > 3]
///         return v
///   )");
///
/// Ownership: the default constructor creates a private Database and plan
/// cache (the historical single-user shape). The sharing constructor
/// attaches to an existing Database + PlanCache — the serve path creates
/// one Session per connection this way, so all connections share one
/// catalog, one worker pool, and one compiled-plan cache.
///
/// Concurrency: once the catalog is populated, Compile/CompileCached/
/// Prepare/Run/RunProfiled/Execute/RunBaseline are safe to call from many
/// threads at once, including across Sessions sharing one Database.
class Session {
 public:
  Session();
  /// Attaches to a shared database (and optionally a shared plan cache;
  /// null creates a session-private one).
  explicit Session(std::shared_ptr<engine::Database> db,
                   std::shared_ptr<PlanCache> cache = nullptr);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  engine::Database& db() { return *db_; }
  const engine::Database& db() const { return *db_; }
  const std::shared_ptr<engine::Database>& shared_db() const { return db_; }
  const std::shared_ptr<PlanCache>& shared_cache() const { return cache_; }

  /// Compiles the (single) @pytond function in `source` to SQL without
  /// executing it.
  Result<frontend::Compiled> Compile(const std::string& source,
                                     const RunOptions& options = {}) const;

  /// Compile through the shared plan cache: a hit (same normalized source
  /// + artifact-affecting options) returns the cached artifact and skips
  /// the whole frontend. Misses compile, then publish. With options.trace
  /// attached, records a "plan_cache" span whose `hit` counter is 0/1 and
  /// whose `warnings` counter re-emits the number of stored verifier
  /// diagnostics (hits included, so cached warnings are never silently
  /// swallowed).
  Result<std::shared_ptr<const frontend::Compiled>> CompileCached(
      const std::string& source, const RunOptions& options = {});

  /// PREPARE: auto-parameterizes the source (filter-shaped literals
  /// become `$pN` slots), keys the plan cache on the parameterized
  /// skeleton, and compiles on miss — so two prepares that differ only in
  /// literal values share one compiled plan (tond_serve_prepared_hits).
  /// Sources with nothing to parameterize, or whose parameterized compile
  /// fails (tond_serve_param_fallback counter), fall back to the literal-
  /// keyed cache and still return an executable statement.
  Result<PreparedStatement> Prepare(const std::string& source,
                                    const RunOptions& options = {});

  /// Compiles and executes through the SQL engine.
  Result<std::shared_ptr<const Table>> Run(const std::string& source,
                                           const RunOptions& options = {});

  /// Compiles and executes with tracing forced on, returning the table
  /// plus a QueryProfile (the paper's compile-time vs. execution-time
  /// split). Uses options.trace when the caller attached a collector,
  /// otherwise a run-local one.
  Result<ProfiledRun> RunProfiled(const std::string& source,
                                  const RunOptions& options = {});

  /// Executes a previously compiled function's SQL (options.params binds
  /// any `$pN` placeholders).
  Result<std::shared_ptr<const Table>> Execute(const frontend::Compiled& c,
                                               const RunOptions& options = {});

  /// Runs the same source through the eager interpreter — the paper's
  /// Python/Pandas/NumPy baseline. Pass a collector to time it (its
  /// "eager" span feeds QueryProfile::eager_ms / SpeedupVsBaseline).
  Result<Table> RunBaseline(const std::string& source,
                            obs::TraceCollector* trace = nullptr) const;

  /// Plan-cache counters (thread-safe snapshot of the shared cache).
  PlanCacheStats plan_cache_stats() const;
  void ClearPlanCache();

 private:
  /// Cache lookup + compile-on-miss with the hit/warning span protocol.
  Result<std::shared_ptr<const frontend::Compiled>> LookupOrCompile(
      const std::string& key, const RunOptions& options,
      const std::function<Result<frontend::Compiled>()>& compile);

  std::shared_ptr<engine::Database> db_;
  std::shared_ptr<PlanCache> cache_;

  // Hot-path metrics in the database's registry, resolved once.
  obs::Counter* runs_total_;
  obs::Counter* run_failures_total_;
  obs::Histogram* run_latency_ns_;
  obs::Counter* prepared_hits_total_;
  obs::Counter* prepared_misses_total_;
  obs::Counter* param_fallback_total_;
};

}  // namespace pytond

#endif  // PYTOND_CORE_SESSION_H_
