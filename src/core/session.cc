#include "core/session.h"

#include <algorithm>
#include <sstream>

#include "analysis/physical/physical.h"
#include "frontend/parameterize.h"
#include "frontend/pylang/parser.h"

namespace pytond {

namespace {

frontend::CompileOptions ToCompileOptions(const RunOptions& options) {
  frontend::CompileOptions out;
  out.optimization_level = options.optimization_level;
  out.dialect = options.profile == engine::BackendProfile::kCompiled
                    ? sqlgen::SqlDialect::kHyper
                    : sqlgen::SqlDialect::kDuck;
  out.trace = options.trace;
  out.deep_lints = options.deep_lints;
  out.frontend_checks = options.frontend_checks;
  return out;
}

/// Normalizes a @pytond source for cache keying: strips trailing
/// whitespace, drops blank leading/trailing lines, and removes the common
/// leading indentation — so the same function pasted at different
/// indentation depths (raw strings, notebooks) shares one cache entry.
std::string NormalizeSource(const std::string& source) {
  std::vector<std::string> lines;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(std::move(line));
  }
  size_t first = 0;
  size_t last = lines.size();
  while (first < last && lines[first].empty()) ++first;
  while (last > first && lines[last - 1].empty()) --last;
  size_t indent = std::string::npos;
  for (size_t i = first; i < last; ++i) {
    if (lines[i].empty()) continue;
    indent = std::min(indent, lines[i].find_first_not_of(' '));
  }
  if (indent == std::string::npos) indent = 0;
  std::string out;
  for (size_t i = first; i < last; ++i) {
    const std::string& l = lines[i];
    out.append(l.empty() ? l : l.substr(std::min(indent, l.size())));
    out.push_back('\n');
  }
  return out;
}

/// Everything that changes the compiled artifact — or selects between
/// execution strategies whose plans must not be conflated — must be in
/// the key suffix. Shared by the literal and skeleton key builders.
std::string KeySuffix(const RunOptions& options) {
  std::string key;
  key += '\x1f';
  key += engine::BackendProfileName(options.profile);
  key += "|O";
  key += std::to_string(options.optimization_level);
  key += options.deep_lints ? "|deep" : "";
  // Default-on options append a marker only when off, so existing keys
  // (and tests pinning them) are unchanged.
  key += options.frontend_checks ? "" : "|nofc";
  // TOND_PIPELINE regression isolation: a plan cached with pipelines on
  // must never serve a pipelines-off run (and vice versa), even though
  // the SQL is identical today — the off-switch exists to bisect
  // executor bugs, and a shared entry would blunt it.
  key += options.pipeline ? "" : "|nopipe";
  return key;
}

std::string CacheKey(const std::string& source, const RunOptions& options) {
  return NormalizeSource(source) + KeySuffix(options);
}

const char* TypeName(DataType t) {
  switch (t) {
    case DataType::kInt64: return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kString: return "string";
    case DataType::kBool: return "bool";
    case DataType::kDate: return "date";
    case DataType::kNull: return "null";
  }
  return "?";
}

}  // namespace

Session::Session() : Session(std::make_shared<engine::Database>(), nullptr) {}

Session::Session(std::shared_ptr<engine::Database> db,
                 std::shared_ptr<PlanCache> cache)
    : db_(std::move(db)),
      cache_(cache != nullptr
                 ? std::move(cache)
                 : std::make_shared<PlanCache>(&db_->metrics())),
      runs_total_(&db_->metrics().counter("tond_session_runs_total")),
      run_failures_total_(
          &db_->metrics().counter("tond_session_run_failures_total")),
      run_latency_ns_(
          &db_->metrics().histogram("tond_session_run_latency_ns")),
      prepared_hits_total_(
          &db_->metrics().counter("tond_serve_prepared_hits_total")),
      prepared_misses_total_(
          &db_->metrics().counter("tond_serve_prepared_misses_total")),
      param_fallback_total_(
          &db_->metrics().counter("tond_serve_param_fallback_total")) {}

Result<frontend::Compiled> Session::Compile(const std::string& source,
                                            const RunOptions& options) const {
  return frontend::CompileFunction(source, db_->catalog(),
                                   ToCompileOptions(options));
}

Result<std::shared_ptr<const frontend::Compiled>> Session::LookupOrCompile(
    const std::string& key, const RunOptions& options,
    const std::function<Result<frontend::Compiled>()>& compile) {
  if (auto hit = cache_->Lookup(key)) {
    // Re-emit the stored verifier warnings: a hit must surface the same
    // diagnostics the original compile did, not silently drop them.
    obs::Span span(options.trace, "plan_cache", "engine");
    span.AddCounter("hit", 1);
    span.AddCounter("warnings",
                    static_cast<int64_t>(hit->diagnostics.size()));
    return hit;
  }
  // Compile outside any lock so concurrent misses don't serialize; the
  // occasional duplicate compile publishes last-writer-wins.
  PYTOND_ASSIGN_OR_RETURN(frontend::Compiled c, compile());
  if (options.trace != nullptr) {
    obs::Span span(options.trace, "plan_cache", "engine");
    span.AddCounter("hit", 0);
    span.AddCounter("warnings", static_cast<int64_t>(c.diagnostics.size()));
  }
  auto shared = std::make_shared<const frontend::Compiled>(std::move(c));
  if (options.verify_plans && !shared->params.empty()) {
    // Serve insert gate (P043): a parameterized skeleton is verified
    // once, at publish time, before any other connection can hit it —
    // every declared slot must surface as `$pN` in the cached SQL.
    auto diags = analysis::physical::VerifySkeletonSql(
        shared->sql, shared->params.size());
    PYTOND_RETURN_IF_ERROR(
        analysis::physical::CheckOrError(diags, "plan_cache_insert"));
  }
  cache_->Insert(key, shared);
  return shared;
}

Result<std::shared_ptr<const frontend::Compiled>> Session::CompileCached(
    const std::string& source, const RunOptions& options) {
  if (!options.use_plan_cache) {
    PYTOND_ASSIGN_OR_RETURN(frontend::Compiled c, Compile(source, options));
    return std::make_shared<const frontend::Compiled>(std::move(c));
  }
  return LookupOrCompile(CacheKey(source, options), options,
                         [&] { return Compile(source, options); });
}

Result<PreparedStatement> Session::Prepare(const std::string& source,
                                           const RunOptions& options) {
  const bool record = db_->metrics().enabled();
  PreparedStatement ps;
  ps.session_ = this;
  ps.options_ = options;
  ps.options_.params = nullptr;

  // Parse once to discover the parameterizable literals and build the
  // skeleton key. The compile-on-miss below re-runs the same
  // deterministic marking, so slot order always matches the key.
  auto parsed = frontend::py::ParseModule(source);
  std::vector<frontend::ParamSlot> slots;
  std::string skeleton;
  if (parsed.ok() && parsed->functions.size() == 1) {
    slots = frontend::ParameterizeFunction(&parsed->functions[0]);
    skeleton = frontend::SkeletonKey(parsed->functions[0]);
  }

  if (!slots.empty() && options.use_plan_cache) {
    PlanCacheStats before = cache_->stats();
    std::string key = "\x1d param:" + skeleton + KeySuffix(options);
    auto compiled = LookupOrCompile(key, options, [&] {
      frontend::CompileOptions copts = ToCompileOptions(options);
      copts.parameterize = true;
      return frontend::CompileFunction(source, db_->catalog(), copts);
    });
    if (compiled.ok() && (*compiled)->params.size() == slots.size()) {
      const bool was_hit = cache_->stats().hits > before.hits;
      if (record) {
        (was_hit ? prepared_hits_total_ : prepared_misses_total_)->Add(1);
      }
      ps.compiled_ = *compiled;
      ps.parameterized_ = true;
      ps.defaults_.reserve(slots.size());
      for (const frontend::ParamSlot& s : slots) {
        ps.defaults_.push_back(s.seed);
      }
      return ps;
    }
    // Parameterized compile failed (a marked literal reached a construct
    // the translator consumes structurally) or slot accounting diverged:
    // fall back to the literal path below so PREPARE never rejects a
    // source that ad-hoc Run would accept.
    if (record) param_fallback_total_->Add(1);
  }

  PlanCacheStats before = cache_->stats();
  PYTOND_ASSIGN_OR_RETURN(auto compiled, CompileCached(source, options));
  if (record) {
    const bool was_hit =
        options.use_plan_cache && cache_->stats().hits > before.hits;
    (was_hit ? prepared_hits_total_ : prepared_misses_total_)->Add(1);
  }
  ps.compiled_ = std::move(compiled);
  ps.parameterized_ = false;
  return ps;
}

Result<std::shared_ptr<const Table>> PreparedStatement::Execute() const {
  return Execute(defaults_);
}

Result<std::shared_ptr<const Table>> PreparedStatement::Execute(
    const std::vector<Value>& params) const {
  const auto& slots = compiled_->params;
  if (params.size() != slots.size()) {
    return Status::InvalidArgument(
        "prepared statement expects " + std::to_string(slots.size()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  // Type-checked binding: each value must match the slot type the plan
  // was compiled against (int64 promotes into a float64 slot — the usual
  // numeric literal relaxation).
  std::vector<Value> bound;
  bound.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const DataType want = slots[i].type;
    const DataType got = params[i].type();
    if (got == want) {
      bound.push_back(params[i]);
    } else if (want == DataType::kFloat64 && got == DataType::kInt64) {
      bound.push_back(Value::Float64(
          static_cast<double>(params[i].AsInt64())));
    } else {
      return Status::InvalidArgument(
          "parameter $p" + std::to_string(i) + " expects " +
          std::string(TypeName(want)) + ", got " + TypeName(got) + " (" +
          params[i].ToString() + ")");
    }
  }
  RunOptions opts = options_;
  opts.params = &bound;
  // Verify-once: all bindings share one skeleton plan, so the first
  // execution carries the physical verifier and later ones skip it.
  opts.verify_plans = options_.verify_plans && !verified_->exchange(true);
  return session_->Execute(*compiled_, opts);
}

Result<std::shared_ptr<const Table>> Session::Run(const std::string& source,
                                                  const RunOptions& options) {
  // End-to-end run latency (compile or cache hit + execute); failures in
  // either phase count once.
  const bool record = db_->metrics().enabled();
  const uint64_t t0 = record ? obs::NowNs() : 0;
  auto compiled = CompileCached(source, options);
  Result<std::shared_ptr<const Table>> result =
      compiled.ok() ? Execute(**compiled, options)
                    : Result<std::shared_ptr<const Table>>(compiled.status());
  if (record) {
    runs_total_->Add(1);
    run_latency_ns_->Record(obs::NowNs() - t0);
    if (!result.ok()) run_failures_total_->Add(1);
  }
  return result;
}

Result<ProfiledRun> Session::RunProfiled(const std::string& source,
                                         const RunOptions& options) {
  obs::TraceCollector local;
  RunOptions traced = options;
  if (traced.trace == nullptr) traced.trace = &local;
  const bool record = db_->metrics().enabled();
  const uint64_t t0 = record ? obs::NowNs() : 0;
  auto run = [&]() -> Result<std::shared_ptr<const Table>> {
    PYTOND_ASSIGN_OR_RETURN(auto c, CompileCached(source, traced));
    return Execute(*c, traced);
  }();
  if (record) {
    runs_total_->Add(1);
    run_latency_ns_->Record(obs::NowNs() - t0);
    if (!run.ok()) run_failures_total_->Add(1);
  }
  PYTOND_ASSIGN_OR_RETURN(auto table, std::move(run));
  ProfiledRun out;
  out.table = std::move(table);
  out.profile = obs::SummarizeTrace(*traced.trace);
  return out;
}

Result<std::shared_ptr<const Table>> Session::Execute(
    const frontend::Compiled& c, const RunOptions& options) {
  engine::QueryOptions qopts;
  qopts.profile = options.profile;
  qopts.num_threads = options.num_threads;
  qopts.pipeline = options.pipeline;
  qopts.verify_plans = options.verify_plans;
  qopts.params = options.params;
  qopts.trace = options.trace;
  qopts.mem = options.mem;
  return db_->Query(c.sql, qopts);
}

Result<Table> Session::RunBaseline(const std::string& source,
                                   obs::TraceCollector* trace) const {
  runtime::InterpretOptions opts;
  opts.trace = trace;
  return runtime::InterpretSource(source, db_->catalog(), opts);
}

PlanCacheStats Session::plan_cache_stats() const { return cache_->stats(); }

void Session::ClearPlanCache() { cache_->Clear(); }

}  // namespace pytond
