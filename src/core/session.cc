#include "core/session.h"

#include <algorithm>
#include <sstream>

namespace pytond {

namespace {

frontend::CompileOptions ToCompileOptions(const RunOptions& options) {
  frontend::CompileOptions out;
  out.optimization_level = options.optimization_level;
  out.dialect = options.profile == engine::BackendProfile::kCompiled
                    ? sqlgen::SqlDialect::kHyper
                    : sqlgen::SqlDialect::kDuck;
  out.trace = options.trace;
  out.deep_lints = options.deep_lints;
  out.frontend_checks = options.frontend_checks;
  return out;
}

/// Normalizes a @pytond source for cache keying: strips trailing
/// whitespace, drops blank leading/trailing lines, and removes the common
/// leading indentation — so the same function pasted at different
/// indentation depths (raw strings, notebooks) shares one cache entry.
std::string NormalizeSource(const std::string& source) {
  std::vector<std::string> lines;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(std::move(line));
  }
  while (!lines.empty() && lines.front().empty()) lines.erase(lines.begin());
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  size_t indent = std::string::npos;
  for (const std::string& l : lines) {
    if (l.empty()) continue;
    indent = std::min(indent, l.find_first_not_of(' '));
  }
  if (indent == std::string::npos) indent = 0;
  std::string out;
  for (const std::string& l : lines) {
    out.append(l.empty() ? l : l.substr(std::min(indent, l.size())));
    out.push_back('\n');
  }
  return out;
}

/// Everything that changes the compiled artifact must be in the key.
std::string CacheKey(const std::string& source, const RunOptions& options) {
  std::string key = NormalizeSource(source);
  key += '\x1f';
  key += engine::BackendProfileName(options.profile);
  key += "|O";
  key += std::to_string(options.optimization_level);
  key += options.deep_lints ? "|deep" : "";
  // Default-on options append a marker only when off, so existing keys
  // (and tests pinning them) are unchanged.
  key += options.frontend_checks ? "" : "|nofc";
  return key;
}

}  // namespace

Session::Session()
    : runs_total_(&db_.metrics().counter("tond_session_runs_total")),
      run_failures_total_(
          &db_.metrics().counter("tond_session_run_failures_total")),
      run_latency_ns_(
          &db_.metrics().histogram("tond_session_run_latency_ns")),
      cache_hits_total_(&db_.metrics().counter("tond_cache_plan_hits_total")),
      cache_misses_total_(
          &db_.metrics().counter("tond_cache_plan_misses_total")),
      cache_entries_(&db_.metrics().gauge("tond_cache_plan_entries")) {}

Result<frontend::Compiled> Session::Compile(const std::string& source,
                                            const RunOptions& options) const {
  return frontend::CompileFunction(source, db_.catalog(),
                                   ToCompileOptions(options));
}

Result<std::shared_ptr<const frontend::Compiled>> Session::CompileCached(
    const std::string& source, const RunOptions& options) {
  if (!options.use_plan_cache) {
    PYTOND_ASSIGN_OR_RETURN(frontend::Compiled c, Compile(source, options));
    return std::make_shared<const frontend::Compiled>(std::move(c));
  }
  const bool record = db_.metrics().enabled();
  std::string key = CacheKey(source, options);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++cache_hits_;
      if (record) cache_hits_total_->Add(1);
      // Re-emit the stored verifier warnings: a hit must surface the same
      // diagnostics the original compile did, not silently drop them.
      obs::Span span(options.trace, "plan_cache", "engine");
      span.AddCounter("hit", 1);
      span.AddCounter("warnings",
                      static_cast<int64_t>(it->second->diagnostics.size()));
      return it->second;
    }
    ++cache_misses_;
    if (record) cache_misses_total_->Add(1);
  }
  // Compile outside the lock so concurrent misses don't serialize; the
  // occasional duplicate compile publishes last-writer-wins.
  PYTOND_ASSIGN_OR_RETURN(frontend::Compiled c, Compile(source, options));
  if (options.trace != nullptr) {
    obs::Span span(options.trace, "plan_cache", "engine");
    span.AddCounter("hit", 0);
    span.AddCounter("warnings", static_cast<int64_t>(c.diagnostics.size()));
  }
  auto shared = std::make_shared<const frontend::Compiled>(std::move(c));
  std::lock_guard<std::mutex> lock(cache_mu_);
  plan_cache_[std::move(key)] = shared;
  if (record) {
    cache_entries_->Set(static_cast<int64_t>(plan_cache_.size()));
  }
  return shared;
}

Result<std::shared_ptr<const Table>> Session::Run(const std::string& source,
                                                  const RunOptions& options) {
  // End-to-end run latency (compile or cache hit + execute); failures in
  // either phase count once.
  const bool record = db_.metrics().enabled();
  const uint64_t t0 = record ? obs::NowNs() : 0;
  auto compiled = CompileCached(source, options);
  Result<std::shared_ptr<const Table>> result =
      compiled.ok() ? Execute(**compiled, options)
                    : Result<std::shared_ptr<const Table>>(compiled.status());
  if (record) {
    runs_total_->Add(1);
    run_latency_ns_->Record(obs::NowNs() - t0);
    if (!result.ok()) run_failures_total_->Add(1);
  }
  return result;
}

Result<ProfiledRun> Session::RunProfiled(const std::string& source,
                                         const RunOptions& options) {
  obs::TraceCollector local;
  RunOptions traced = options;
  if (traced.trace == nullptr) traced.trace = &local;
  const bool record = db_.metrics().enabled();
  const uint64_t t0 = record ? obs::NowNs() : 0;
  auto run = [&]() -> Result<std::shared_ptr<const Table>> {
    PYTOND_ASSIGN_OR_RETURN(auto c, CompileCached(source, traced));
    return Execute(*c, traced);
  }();
  if (record) {
    runs_total_->Add(1);
    run_latency_ns_->Record(obs::NowNs() - t0);
    if (!run.ok()) run_failures_total_->Add(1);
  }
  PYTOND_ASSIGN_OR_RETURN(auto table, std::move(run));
  ProfiledRun out;
  out.table = std::move(table);
  out.profile = obs::SummarizeTrace(*traced.trace);
  return out;
}

Result<std::shared_ptr<const Table>> Session::Execute(
    const frontend::Compiled& c, const RunOptions& options) {
  engine::QueryOptions qopts;
  qopts.profile = options.profile;
  qopts.num_threads = options.num_threads;
  qopts.pipeline = options.pipeline;
  qopts.trace = options.trace;
  qopts.mem = options.mem;
  return db_.Query(c.sql, qopts);
}

Result<Table> Session::RunBaseline(const std::string& source,
                                   obs::TraceCollector* trace) const {
  runtime::InterpretOptions opts;
  opts.trace = trace;
  return runtime::InterpretSource(source, db_.catalog(), opts);
}

PlanCacheStats Session::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  PlanCacheStats s;
  s.hits = cache_hits_;
  s.misses = cache_misses_;
  s.entries = plan_cache_.size();
  return s;
}

void Session::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  plan_cache_.clear();
}

}  // namespace pytond
