#include "core/session.h"

namespace pytond {

namespace {

frontend::CompileOptions ToCompileOptions(const RunOptions& options) {
  frontend::CompileOptions out;
  out.optimization_level = options.optimization_level;
  out.dialect = options.profile == engine::BackendProfile::kCompiled
                    ? sqlgen::SqlDialect::kHyper
                    : sqlgen::SqlDialect::kDuck;
  out.trace = options.trace;
  return out;
}

}  // namespace

Result<frontend::Compiled> Session::Compile(const std::string& source,
                                            const RunOptions& options) const {
  return frontend::CompileFunction(source, db_.catalog(),
                                   ToCompileOptions(options));
}

Result<std::shared_ptr<const Table>> Session::Run(const std::string& source,
                                                  const RunOptions& options) {
  PYTOND_ASSIGN_OR_RETURN(frontend::Compiled c, Compile(source, options));
  return Execute(c, options);
}

Result<ProfiledRun> Session::RunProfiled(const std::string& source,
                                         const RunOptions& options) {
  obs::TraceCollector local;
  RunOptions traced = options;
  if (traced.trace == nullptr) traced.trace = &local;
  PYTOND_ASSIGN_OR_RETURN(frontend::Compiled c, Compile(source, traced));
  PYTOND_ASSIGN_OR_RETURN(auto table, Execute(c, traced));
  ProfiledRun out;
  out.table = std::move(table);
  out.profile = obs::SummarizeTrace(*traced.trace);
  return out;
}

Result<std::shared_ptr<const Table>> Session::Execute(
    const frontend::Compiled& c, const RunOptions& options) {
  engine::QueryOptions qopts;
  qopts.profile = options.profile;
  qopts.num_threads = options.num_threads;
  qopts.trace = options.trace;
  return db_.Query(c.sql, qopts);
}

Result<Table> Session::RunBaseline(const std::string& source,
                                   obs::TraceCollector* trace) const {
  runtime::InterpretOptions opts;
  opts.trace = trace;
  return runtime::InterpretSource(source, db_.catalog(), opts);
}

}  // namespace pytond
