#ifndef PYTOND_CORE_PLAN_CACHE_H_
#define PYTOND_CORE_PLAN_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "frontend/compiler.h"
#include "obs/metrics/metrics.h"

namespace pytond {

/// Compiled-plan cache counters (cumulative).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
};

/// The compiled-plan cache, shared by every Session (and serve-path
/// connection) attached to one Database. Keys are opaque strings built by
/// the owning Session: normalized or parameterized source plus every
/// option that changes the compiled artifact. Thread-safe; lookups and
/// inserts feed the always-on tond_cache_plan_* metrics of the registry
/// it was constructed against.
class PlanCache {
 public:
  explicit PlanCache(obs::MetricsRegistry* metrics);
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached artifact or null; counts a hit or a miss.
  std::shared_ptr<const frontend::Compiled> Lookup(const std::string& key);

  /// Publishes a compiled artifact (last writer wins on races).
  void Insert(const std::string& key,
              std::shared_ptr<const frontend::Compiled> compiled);

  PlanCacheStats stats() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const frontend::Compiled>> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  obs::MetricsRegistry* metrics_;
  obs::Counter* hits_total_;
  obs::Counter* misses_total_;
  obs::Gauge* entries_;
};

}  // namespace pytond

#endif  // PYTOND_CORE_PLAN_CACHE_H_
