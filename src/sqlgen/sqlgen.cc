#include "sqlgen/sqlgen.h"

#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <sstream>

#include "analysis/verifier.h"
#include "common/date_util.h"
#include "common/string_util.h"

namespace pytond::sqlgen {

using tondir::Atom;
using tondir::Body;
using tondir::CmpOp;
using tondir::Program;
using tondir::Rule;
using tondir::Term;

namespace {

std::string RenderValue(const Value& v) {
  switch (v.type()) {
    case DataType::kString: {
      // Escape single quotes.
      std::string out = "'";
      for (char c : v.AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      return out + "'";
    }
    case DataType::kDate:
      return "DATE '" + v.ToString() + "'";
    case DataType::kBool:
      return v.AsBool() ? "TRUE" : "FALSE";
    case DataType::kNull:
      return "NULL";
    default:
      return v.ToString();
  }
}

const char* RenderCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kGe: return ">=";
    case CmpOp::kGt: return ">";
  }
  return "?";
}

/// Column names visible for a relation: CTE heads override base tables.
class ColumnResolver {
 public:
  explicit ColumnResolver(const Program& program) {
    for (const auto& [rel, cols] : program.base_columns) {
      columns_[rel] = cols;
    }
    for (const Rule& r : program.rules) {
      columns_[r.head.relation] =
          r.head.col_names.empty() ? r.head.vars : r.head.col_names;
    }
  }

  Result<const std::vector<std::string>*> Lookup(
      const std::string& rel) const {
    auto it = columns_.find(rel);
    if (it == columns_.end()) {
      return Status::NotFound("no column names for relation '" + rel + "'");
    }
    return &it->second;
  }

 private:
  std::map<std::string, std::vector<std::string>> columns_;
};

/// Generates the SELECT for one rule.
class RuleGenerator {
 public:
  RuleGenerator(const Rule& rule, const ColumnResolver& resolver,
                const SqlGenOptions& options, bool is_sink, int* alias_seq)
      : rule_(rule),
        resolver_(resolver),
        options_(options),
        is_sink_(is_sink),
        alias_seq_(alias_seq) {}

  Result<std::string> Generate() {
    // Pure constant relation: VALUES body.
    if (rule_.body.size() == 1 &&
        rule_.body[0].kind == Atom::Kind::kConstRel) {
      std::string sql = "VALUES ";
      const auto& vals = rule_.body[0].const_values;
      for (size_t i = 0; i < vals.size(); ++i) {
        if (i) sql += ", ";
        sql += "(" + RenderValue(vals[i]) + ")";
      }
      return sql;
    }

    PYTOND_RETURN_IF_ERROR(ProcessBody(rule_.body, /*outer=*/nullptr));

    std::ostringstream sql;
    std::string sep = options_.pretty ? "\n" : " ";
    sql << "SELECT ";
    if (rule_.head.distinct) sql << "DISTINCT ";
    for (size_t i = 0; i < rule_.head.vars.size(); ++i) {
      if (i) sql << ", ";
      PYTOND_ASSIGN_OR_RETURN(std::string e, VarSql(rule_.head.vars[i]));
      std::string name = rule_.head.col_names.empty()
                             ? rule_.head.vars[i]
                             : rule_.head.col_names[i];
      sql << e << " AS " << name;
    }
    sql << sep << "FROM " << from_;
    if (!where_.empty()) {
      sql << sep << "WHERE " << string_util::Join(where_, " AND ");
    }
    if (rule_.head.has_group()) {
      sql << sep << "GROUP BY ";
      for (size_t i = 0; i < rule_.head.group_vars.size(); ++i) {
        if (i) sql << ", ";
        PYTOND_ASSIGN_OR_RETURN(std::string e,
                                VarSql(rule_.head.group_vars[i]));
        sql << e;
      }
    }
    if (rule_.head.has_sort()) {
      if (!is_sink_ && !rule_.head.limit.has_value()) {
        return Status::InvalidArgument(
            "sort without limit is only allowed in the sink rule");
      }
      sql << sep << "ORDER BY ";
      for (size_t i = 0; i < rule_.head.sort_keys.size(); ++i) {
        if (i) sql << ", ";
        // Order by output column name (CTE-safe).
        const std::string& var = rule_.head.sort_keys[i].var;
        std::string name;
        for (size_t p = 0; p < rule_.head.vars.size(); ++p) {
          if (rule_.head.vars[p] == var) {
            name = rule_.head.col_names.empty() ? var
                                                : rule_.head.col_names[p];
            break;
          }
        }
        if (name.empty()) {
          return Status::InvalidArgument("sort key '" + var +
                                         "' not among head vars");
        }
        sql << name << (rule_.head.sort_keys[i].ascending ? "" : " DESC");
      }
    }
    if (rule_.head.limit.has_value()) {
      sql << sep << "LIMIT " << *rule_.head.limit;
    }
    return sql.str();
  }

 private:
  struct Scope {
    std::map<std::string, std::string> bindings;  // var -> SQL expression
    Scope* outer = nullptr;
  };

  Result<std::string> VarSql(const std::string& var) {
    auto it = scope_.bindings.find(var);
    if (it == scope_.bindings.end()) {
      return Status::Internal("unbound TondIR variable '" + var + "'");
    }
    return it->second;
  }

  std::string NextAlias() { return "r" + std::to_string(++*alias_seq_); }

  /// Processes a body (outer == nullptr for the rule body, else the outer
  /// scope for exists subqueries). Populates from_/where_/bindings.
  Status ProcessBody(const Body& body, Scope* outer) {
    // First pass: relation accesses, constant relations, outer markers.
    const Atom* outer_marker = nullptr;
    std::vector<const Atom*> accesses;
    for (const Atom& a : body) {
      if (a.kind == Atom::Kind::kExternal &&
          string_util::StartsWith(a.ext_name, "outer_")) {
        outer_marker = &a;
      } else if (a.kind == Atom::Kind::kRelAccess) {
        accesses.push_back(&a);
      }
    }

    if (outer_marker != nullptr) {
      PYTOND_RETURN_IF_ERROR(ProcessOuterJoin(*outer_marker, accesses));
    } else {
      for (const Atom* a : accesses) {
        PYTOND_RETURN_IF_ERROR(ProcessAccess(*a));
      }
    }

    for (const Atom& a : body) {
      switch (a.kind) {
        case Atom::Kind::kRelAccess:
        case Atom::Kind::kExternal:
          break;  // handled above / markers consumed
        case Atom::Kind::kConstRel: {
          std::string alias = NextAlias();
          std::string v = "(VALUES ";
          for (size_t i = 0; i < a.const_values.size(); ++i) {
            if (i) v += ", ";
            v += "(";
            v += RenderValue(a.const_values[i]);
            v += ")";
          }
          v += ") AS " + alias + "(c0)";
          AddFromItem(v);
          scope_.bindings[a.var0] = alias + ".c0";
          break;
        }
        case Atom::Kind::kCompare: {
          bool fresh = a.cmp_op == CmpOp::kEq &&
                       !scope_.bindings.count(a.var0) &&
                       (outer == nullptr ||
                        !LookupOuter(outer, a.var0).has_value());
          if (fresh) {
            PYTOND_ASSIGN_OR_RETURN(std::string e, RenderTerm(*a.term));
            scope_.bindings[a.var0] = e;
          } else {
            PYTOND_ASSIGN_OR_RETURN(std::string lhs, BindOrOuter(a.var0, outer));
            PYTOND_ASSIGN_OR_RETURN(std::string rhs, RenderFilterRhs(a));
            where_.push_back("(" + lhs + " " + RenderCmp(a.cmp_op) + " " +
                             rhs + ")");
          }
          break;
        }
        case Atom::Kind::kExists: {
          PYTOND_ASSIGN_OR_RETURN(std::string sub,
                                  GenerateExists(a, &scope_));
          where_.push_back(sub);
          break;
        }
      }
    }
    return Status::OK();
  }

  static std::optional<std::string> LookupOuter(Scope* outer,
                                                const std::string& var) {
    for (Scope* s = outer; s != nullptr; s = s->outer) {
      auto it = s->bindings.find(var);
      if (it != s->bindings.end()) return it->second;
    }
    return std::nullopt;
  }

  Result<std::string> BindOrOuter(const std::string& var, Scope* outer) {
    auto it = scope_.bindings.find(var);
    if (it != scope_.bindings.end()) return it->second;
    auto o = LookupOuter(outer, var);
    if (o.has_value()) return *o;
    return Status::Internal("unbound variable '" + var + "'");
  }

  /// Records the inferred column type for each variable bound by a relation
  /// access, so comparisons can render dialect-appropriate typed literals.
  void NoteVarTypes(const Atom& a) {
    if (options_.facts == nullptr) return;
    const auto* rf = options_.facts->Find(a.relation);
    if (rf == nullptr) return;
    for (size_t i = 0; i < a.vars.size() && i < rf->columns.size(); ++i) {
      if (rf->columns[i].type.has_value()) {
        var_types_.try_emplace(a.vars[i], *rf->columns[i].type);
      }
    }
  }

  /// RHS of a filter comparison. A string constant compared against a
  /// date-typed column becomes a typed date literal: DuckDB prefers the
  /// `DATE '...'` literal form, Hyper an explicit `CAST('...' AS date)`.
  Result<std::string> RenderFilterRhs(const Atom& a) {
    const Term& t = *a.term;
    if (t.kind == Term::Kind::kConst &&
        t.constant.type() == DataType::kString) {
      auto it = var_types_.find(a.var0);
      if (it != var_types_.end() && it->second == DataType::kDate &&
          date_util::Parse(t.constant.AsString()).ok()) {
        if (options_.dialect == SqlDialect::kHyper) {
          return "CAST('" + t.constant.AsString() + "' AS date)";
        }
        return "DATE '" + t.constant.AsString() + "'";
      }
    }
    // A parameter slot whose seed was a date-shaped string compared
    // against a date column needs the cast at the placeholder, since the
    // execute-time binding arrives as a plain string.
    if (t.kind == Term::Kind::kParam &&
        t.constant.type() == DataType::kString) {
      auto it = var_types_.find(a.var0);
      if (it != var_types_.end() && it->second == DataType::kDate &&
          date_util::Parse(t.constant.AsString()).ok()) {
        return "CAST($p" + std::to_string(t.param_index) + " AS date)";
      }
    }
    return RenderTerm(t);
  }

  Status ProcessAccess(const Atom& a) {
    NoteVarTypes(a);
    PYTOND_ASSIGN_OR_RETURN(const std::vector<std::string>* cols,
                            resolver_.Lookup(a.relation));
    if (cols->size() != a.vars.size()) {
      return Status::InvalidArgument(
          "relation '" + a.relation + "' accessed with " +
          std::to_string(a.vars.size()) + " vars but has " +
          std::to_string(cols->size()) + " columns");
    }
    std::string alias = NextAlias();
    AddFromItem(a.relation + " AS " + alias);
    if (uid_order_ref_.empty() && !cols->empty()) {
      uid_order_ref_ = alias + "." + (*cols)[0];
    }
    for (size_t i = 0; i < a.vars.size(); ++i) {
      std::string ref = alias + "." + (*cols)[i];
      auto [it, inserted] = scope_.bindings.try_emplace(a.vars[i], ref);
      if (!inserted) {
        // Shared var: implicit equi-join condition.
        where_.push_back("(" + it->second + " = " + ref + ")");
      }
    }
    return Status::OK();
  }

  /// Outer joins: marker atom @outer_left/right/full(l1, r1, l2, r2, ...)
  /// carries the key pairs; the rule must have exactly two accesses.
  Status ProcessOuterJoin(const Atom& marker,
                          const std::vector<const Atom*>& accesses) {
    if (accesses.size() != 2) {
      return Status::Unsupported(
          "outer join rules must have exactly two relation accesses");
    }
    if (marker.vars.size() % 2 != 0 || marker.vars.empty()) {
      return Status::InvalidArgument("outer marker needs var pairs");
    }
    const Atom& l = *accesses[0];
    const Atom& r = *accesses[1];
    NoteVarTypes(l);
    NoteVarTypes(r);
    PYTOND_ASSIGN_OR_RETURN(const std::vector<std::string>* lcols,
                            resolver_.Lookup(l.relation));
    PYTOND_ASSIGN_OR_RETURN(const std::vector<std::string>* rcols,
                            resolver_.Lookup(r.relation));
    std::string la = NextAlias(), ra = NextAlias();
    for (size_t i = 0; i < l.vars.size(); ++i) {
      scope_.bindings.try_emplace(l.vars[i], la + "." + (*lcols)[i]);
    }
    for (size_t i = 0; i < r.vars.size(); ++i) {
      scope_.bindings.try_emplace(r.vars[i], ra + "." + (*rcols)[i]);
    }
    std::string join_kw;
    if (marker.ext_name == "outer_left") join_kw = "LEFT JOIN";
    else if (marker.ext_name == "outer_right") join_kw = "RIGHT JOIN";
    else if (marker.ext_name == "outer_full") join_kw = "FULL JOIN";
    else return Status::Unsupported("marker '" + marker.ext_name + "'");
    std::string on;
    for (size_t i = 0; i < marker.vars.size(); i += 2) {
      PYTOND_ASSIGN_OR_RETURN(std::string le, VarSql(marker.vars[i]));
      PYTOND_ASSIGN_OR_RETURN(std::string re, VarSql(marker.vars[i + 1]));
      if (i) on += " AND ";
      on += le + " = " + re;
      // After a full outer join the key value is the coalesced pair.
      if (marker.ext_name == "outer_full") {
        std::string coalesced = "COALESCE(" + le + ", " + re + ")";
        scope_.bindings[marker.vars[i]] = coalesced;
        scope_.bindings[marker.vars[i + 1]] = coalesced;
      }
    }
    AddFromItem(l.relation + " AS " + la + " " + join_kw + " " + r.relation +
                " AS " + ra + " ON " + on);
    return Status::OK();
  }

  Result<std::string> GenerateExists(const Atom& exists, Scope* outer) {
    RuleGenerator inner(rule_, resolver_, options_, /*is_sink=*/false,
                        alias_seq_);
    inner.scope_.outer = outer;
    inner.var_types_ = var_types_;  // correlated vars keep their types
    PYTOND_RETURN_IF_ERROR(inner.ProcessBody(*exists.exists_body, outer));
    // Correlations: vars bound both inside and outside.
    for (const auto& [var, expr] : inner.scope_.bindings) {
      auto o = LookupOuter(outer, var);
      if (o.has_value() && *o != expr) {
        inner.where_.push_back("(" + expr + " = " + *o + ")");
      }
    }
    std::string sql = std::string(exists.negated ? "NOT " : "") +
                      "EXISTS (SELECT 1 FROM " + inner.from_;
    if (!inner.where_.empty()) {
      sql += " WHERE " + string_util::Join(inner.where_, " AND ");
    }
    sql += ")";
    return sql;
  }

  void AddFromItem(const std::string& item) {
    if (!from_.empty()) from_ += ", ";
    from_ += item;
  }

  Result<std::string> RenderTerm(const Term& t) {
    switch (t.kind) {
      case Term::Kind::kVar:
        return BindOrOuter(t.var, scope_.outer);
      case Term::Kind::kConst:
        return RenderValue(t.constant);
      case Term::Kind::kParam:
        return "$p" + std::to_string(t.param_index);
      case Term::Kind::kAgg: {
        PYTOND_ASSIGN_OR_RETURN(std::string arg, RenderTerm(*t.children[0]));
        switch (t.agg_fn) {
          case tondir::AggFn::kSum: return "SUM(" + arg + ")";
          case tondir::AggFn::kMin: return "MIN(" + arg + ")";
          case tondir::AggFn::kMax: return "MAX(" + arg + ")";
          case tondir::AggFn::kAvg: return "AVG(" + arg + ")";
          case tondir::AggFn::kCount:
            if (t.children[0]->kind == Term::Kind::kConst) {
              return std::string("COUNT(*)");
            }
            return "COUNT(" + arg + ")";
          case tondir::AggFn::kCountDistinct:
            return "COUNT(DISTINCT " + arg + ")";
        }
        return Status::Internal("bad agg");
      }
      case Term::Kind::kExt:
        return RenderExt(t);
      case Term::Kind::kIf: {
        PYTOND_ASSIGN_OR_RETURN(std::string c, RenderTerm(*t.children[0]));
        PYTOND_ASSIGN_OR_RETURN(std::string a, RenderTerm(*t.children[1]));
        PYTOND_ASSIGN_OR_RETURN(std::string b, RenderTerm(*t.children[2]));
        return "(CASE WHEN " + c + " THEN " + a + " ELSE " + b + " END)";
      }
      case Term::Kind::kBinary: {
        PYTOND_ASSIGN_OR_RETURN(std::string a, RenderTerm(*t.children[0]));
        PYTOND_ASSIGN_OR_RETURN(std::string b, RenderTerm(*t.children[1]));
        switch (t.bin_op) {
          case tondir::BinOp::kAdd: return "(" + a + " + " + b + ")";
          case tondir::BinOp::kSub: return "(" + a + " - " + b + ")";
          case tondir::BinOp::kMul: return "(" + a + " * " + b + ")";
          case tondir::BinOp::kDiv: return "(" + a + " / " + b + ")";
          case tondir::BinOp::kMod: return "(" + a + " % " + b + ")";
          case tondir::BinOp::kAnd: return "(" + a + " AND " + b + ")";
          case tondir::BinOp::kOr: return "(" + a + " OR " + b + ")";
          case tondir::BinOp::kLike: return "(" + a + " LIKE " + b + ")";
          case tondir::BinOp::kNotLike:
            return "(" + a + " NOT LIKE " + b + ")";
          case tondir::BinOp::kConcat: return "(" + a + " || " + b + ")";
          case tondir::BinOp::kEq: return "(" + a + " = " + b + ")";
          case tondir::BinOp::kNe: return "(" + a + " <> " + b + ")";
          case tondir::BinOp::kLt: return "(" + a + " < " + b + ")";
          case tondir::BinOp::kLe: return "(" + a + " <= " + b + ")";
          case tondir::BinOp::kGt: return "(" + a + " > " + b + ")";
          case tondir::BinOp::kGe: return "(" + a + " >= " + b + ")";
        }
        return Status::Internal("bad binop");
      }
    }
    return Status::Internal("bad term");
  }

  Result<std::string> RenderExt(const Term& t) {
    const std::string& f = t.ext_name;
    if (f == "uid") {
      // Deterministic id: order by the first bound column of the first
      // relation access (paper §III-E, Unique ID Generation).
      if (uid_order_ref_.empty()) {
        return Status::InvalidArgument("uid() requires a relation access");
      }
      // 0-based ids, matching NumPy/Pandas indexing (paper §II-B).
      return "(row_number() OVER (ORDER BY " + uid_order_ref_ + ") - 1)";
    }
    std::vector<std::string> args;
    for (const auto& c : t.children) {
      PYTOND_ASSIGN_OR_RETURN(std::string a, RenderTerm(*c));
      args.push_back(std::move(a));
    }
    if (f == "year" || f == "month" || f == "day") {
      if (options_.dialect == SqlDialect::kDuck) {
        std::string field = string_util::ToLower(f);
        field[0] = static_cast<char>(std::toupper(field[0]));
        std::string upper = f;
        for (char& ch : upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        return "EXTRACT(" + upper + " FROM " + args[0] + ")";
      }
      return f + "(" + args[0] + ")";
    }
    if (f == "is_in") {
      return Status::Unsupported("is_in must be lowered before codegen");
    }
    // Generic function spelling (round, abs, substr, lower, upper,
    // starts_with, ends_with, contains, sqrt, ln, exp, power, coalesce...).
    return f + "(" + string_util::Join(args, ", ") + ")";
  }

  const Rule& rule_;
  const ColumnResolver& resolver_;
  const SqlGenOptions& options_;
  bool is_sink_;
  int* alias_seq_;

  Scope scope_;
  std::string from_;
  std::vector<std::string> where_;
  std::map<std::string, DataType> var_types_;  // var -> inferred column type

 public:
  /// First column reference seen (UID ordering anchor); set by
  /// ProcessAccess via AddFromItem time.
  std::string uid_order_ref_;
};

}  // namespace

Result<std::string> GenerateSelect(const Rule& rule,
                                   const SqlGenOptions& options) {
  Program p;
  p.rules.push_back(rule.CloneRule());
  // Treat all accessed relations as base with positional names c0..cn — for
  // tests only.
  std::function<void(const Body&)> scan = [&](const Body& body) {
    for (const Atom& a : body) {
      if (a.kind == Atom::Kind::kRelAccess &&
          !p.base_columns.count(a.relation)) {
        std::vector<std::string> cols;
        for (size_t i = 0; i < a.vars.size(); ++i) {
          cols.push_back(std::string("c") + std::to_string(i));
        }
        p.base_columns[a.relation] = cols;
      } else if (a.kind == Atom::Kind::kExists) {
        scan(*a.exists_body);
      }
    }
  };
  scan(rule.body);
  ColumnResolver resolver(p);
  int alias_seq = 0;
  RuleGenerator gen(rule, resolver, options, /*is_sink=*/true, &alias_seq);
  return gen.Generate();
}

Result<std::string> GenerateSql(const Program& program,
                                const SqlGenOptions& options) {
  if (program.rules.empty()) {
    return Status::InvalidArgument("empty program");
  }
  obs::Span span(options.trace, "sqlgen", "phase");
  span.AddCounter("rules", static_cast<int64_t>(program.rules.size()));
  span.AddCounter("ctes", static_cast<int64_t>(program.rules.size()) - 1);
  if (options.verify_input) {
    analysis::VerifyOptions vopts;
    for (const auto& [rel, cols] : program.base_columns) {
      vopts.base_relations.insert(rel);
    }
    auto diags = analysis::VerifyProgram(program, vopts);
    if (analysis::HasErrors(diags)) {
      return Status::InvalidArgument("program failed verification:\n" +
                                     analysis::FormatDiagnostics(diags));
    }
  }
  ColumnResolver resolver(program);
  std::ostringstream sql;
  std::string sep = options.pretty ? "\n" : " ";
  int alias_seq = 0;
  for (size_t i = 0; i + 1 < program.rules.size(); ++i) {
    const Rule& r = program.rules[i];
    RuleGenerator gen(r, resolver, options, /*is_sink=*/false, &alias_seq);
    PYTOND_ASSIGN_OR_RETURN(std::string body, gen.Generate());
    sql << (i == 0 ? "WITH " : "," + sep);
    sql << r.head.relation << "(";
    const auto& cols = r.head.col_names.empty() ? r.head.vars
                                                : r.head.col_names;
    for (size_t c = 0; c < cols.size(); ++c) {
      if (c) sql << ", ";
      sql << cols[c];
    }
    sql << ") AS (" << sep << body << sep << ")";
  }
  if (program.rules.size() > 1) sql << sep;
  const Rule& sink = program.rules.back();
  RuleGenerator gen(sink, resolver, options, /*is_sink=*/true, &alias_seq);
  PYTOND_ASSIGN_OR_RETURN(std::string body, gen.Generate());
  sql << body;
  std::string out = sql.str();
  span.AddCounter("sql_bytes", static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace pytond::sqlgen
