#ifndef PYTOND_SQLGEN_SQLGEN_H_
#define PYTOND_SQLGEN_SQLGEN_H_

#include <string>

#include "analysis/dataflow/dataflow.h"
#include "common/status.h"
#include "obs/trace.h"
#include "tondir/ir.h"

namespace pytond::sqlgen {

/// SQL dialect spelling differences between backends (paper §III-E,
/// "Backend Adaptation"). Both dialects are accepted by the bundled engine;
/// real DuckDB prefers EXTRACT(YEAR FROM x) where Hyper exposes year(x).
enum class SqlDialect { kDuck, kHyper };

struct SqlGenOptions {
  SqlDialect dialect = SqlDialect::kDuck;
  /// Pretty-print with newlines between clauses.
  bool pretty = true;
  /// Run the TondIR semantic verifier before generating; rejects programs
  /// that would render to broken SQL with an InvalidArgument carrying the
  /// diagnostics. (GenerateSelect, a test helper, never verifies.)
  bool verify_input = true;
  /// Optional tracing: GenerateSql opens a "sqlgen" phase span with
  /// rules/ctes/sql_bytes counters.
  obs::TraceCollector* trace = nullptr;
  /// Column-type facts from the dataflow analysis (analysis/dataflow/).
  /// When present, comparisons of a date-typed column against a string
  /// constant emit a typed literal in the dialect's preferred spelling:
  /// `DATE '...'` for kDuck, `CAST('...' AS date)` for kHyper (paper
  /// §III-E, Backend Adaptation). Null = render constants verbatim.
  const analysis::dataflow::ProgramFacts* facts = nullptr;
};

/// Lowers a TondIR program to one SQL statement: every non-sink rule
/// becomes a CTE (`WITH name(cols) AS (...)`), the sink rule becomes the
/// final SELECT carrying ORDER BY / LIMIT. Sort/limit pairs on non-sink
/// rules are rejected (the translator folds them into one rule per paper
/// §III-E).
Result<std::string> GenerateSql(const tondir::Program& program,
                                const SqlGenOptions& options = {});

/// Lowers a single rule to a SELECT statement body (no WITH prefix);
/// exposed for tests.
Result<std::string> GenerateSelect(const tondir::Rule& rule,
                                   const SqlGenOptions& options = {});

}  // namespace pytond::sqlgen

#endif  // PYTOND_SQLGEN_SQLGEN_H_
