// tondcheck: frontend translatability lint for @pytond workload sources.
//
//   tondcheck [options] workload.py [more.py ...]
//   tondcheck -                       # read one module from stdin
//
// Parses each mini-Python module, ANF-normalizes every @pytond function,
// and runs the frontend translatability analyzer (frontend/analysis/) over
// it — schema inference from `# @base name(col:type, ...)` directives,
// shape/axis facts for the NumPy path, def-use/liveness, and the
// translatable / flow-breaker / untranslatable classification — without
// compiling or executing anything. Findings print one per line:
//
//   q1.py: q1: line 4: error[F001]: unknown column 'shipdate' ...
//
// Exit status: 0 clean, 1 any error (or any warning with --werror),
// 2 usage/parse failure.

#include <iostream>
#include <string>
#include <vector>

#include "analysis/render.h"
#include "frontend/analysis/analyzer.h"
#include "obs/json.h"

namespace render = pytond::analysis::render;

namespace {

struct CheckConfig {
  bool werror = false;
  bool quiet = false;          // suppress per-file "OK" lines
  bool json = false;           // machine-readable output on stdout
  bool facts = false;          // dump per-binding schema/liveness facts
  bool explain = false;        // print each diagnostic's why-chain
  bool flow_breakers = true;   // F011 region-boundary warnings
};

int Usage() {
  std::cerr
      << "usage: tondcheck [options] <workload.py ...|->\n"
         "  -                  read a module from stdin\n"
         "  --werror           treat warnings as errors (exit 1)\n"
         "  --quiet            only print diagnostics, no per-file summary\n"
         "  --json             emit one JSON document on stdout instead of\n"
         "                     plain-text lines (same exit codes)\n"
         "  --facts            dump per-binding facts (kind, schema, class,\n"
         "                     liveness) for every @pytond function\n"
         "  --explain-diag     print each diagnostic's inference chain\n"
         "  --no-flow-breakers suppress F011 region-boundary warnings\n"
         "  --list-codes       print the diagnostic code table and exit\n"
         "\n"
         "Declare table schemas with comment directives:\n"
         "  # @base lineitem(l_orderkey:int64, l_shipdate:date, ...)\n";
  return 2;
}

void ListCodes() {
  using namespace pytond::analysis::codes;
  const struct { const char* code; const char* what; } table[] = {
      {kUnknownColumn, "column not in the inferred frame schema"},
      {kUnknownTable, "parameter has no catalog table / @base directive"},
      {kUndefinedName, "name read before any binding"},
      {kUnsupportedApi, "pandas/numpy API outside the translatable subset"},
      {kTypeIncompatible, "comparison over incompatible column types"},
      {kCrossFrameOp, "mask/arithmetic mixes columns of different frames"},
      {kBadAxis, "axis out of range for the inferred array order"},
      {kBadEinsum, "malformed or unsupported einsum spec"},
      {kBadMergeKey, "merge key missing from a side's schema"},
      {kDeadBinding, "binding never read and never returned (warning)"},
      {kFlowBreaker, "aggregate/group-by/distinct ends a region (warning)"},
      {kShadowedBinding, "rebinding a name never read since (warning)"},
      {kMissingArgument, "call is missing a required argument"},
      {kNonLiteralArgument, "argument must be a literal for translation"},
      {kBadReturn, "function must return a frame (or is missing return)"},
  };
  for (const auto& row : table) {
    std::cout << row.code << "  " << row.what << "\n";
  }
}

/// Checks one module; returns 0 clean, 1 findings, 2 parse error. With
/// --json, appends one per-file object to `json` (an open array) instead
/// of writing plain-text lines.
int CheckSource(const std::string& label, const std::string& text,
                const CheckConfig& config, pytond::obs::JsonWriter* json) {
  namespace check = pytond::frontend::check;
  check::AnalyzerOptions options;
  options.report_flow_breakers = config.flow_breakers;
  auto analyzed = check::AnalyzeSource(text, options);
  if (!analyzed.ok()) {
    if (json != nullptr) {
      render::WriteParseErrorJson(*json, label, analyzed.status().message());
    } else {
      std::cerr << label << ": parse error: " << analyzed.status().message()
                << "\n";
    }
    return 2;
  }
  bool failed = false;
  for (const check::FunctionFacts& f : *analyzed) {
    failed = failed || render::AnyFailed(f.diagnostics, config.werror);
  }
  if (config.facts && json == nullptr) {
    for (const check::FunctionFacts& f : *analyzed) {
      std::cout << label << ": " << f.function_name << ": facts:\n"
                << f.Dump();
    }
  }
  if (json != nullptr) {
    json->BeginObject()
        .Key("file").String(label)
        .Key("ok").Bool(!failed)
        .Key("functions").BeginArray();
    for (const check::FunctionFacts& f : *analyzed) {
      json->BeginObject()
          .Key("name").String(f.function_name)
          .Key("bindings").Int(static_cast<int64_t>(f.bindings.size()))
          .Key("diagnostics").BeginArray();
      for (const auto& d : f.diagnostics) {
        render::WriteDiagnosticJson(*json, d, render::Location::kLine);
      }
      json->EndArray().EndObject();
    }
    json->EndArray().EndObject();
  } else {
    size_t bindings = 0;
    for (const check::FunctionFacts& f : *analyzed) {
      bindings += f.bindings.size();
      for (const auto& d : f.diagnostics) {
        render::PrintDiagnostic(std::cout, label + ": " + f.function_name,
                                d, config.explain);
      }
    }
    if (!failed && !config.quiet) {
      std::cout << label << ": OK (" << analyzed->size() << " functions, "
                << bindings << " bindings)\n";
    }
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  CheckConfig config;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      config.werror = true;
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else if (arg == "--json") {
      config.json = true;
    } else if (arg == "--facts") {
      config.facts = true;
    } else if (arg == "--explain-diag") {
      config.explain = true;
    } else if (arg == "--no-flow-breakers") {
      config.flow_breakers = false;
    } else if (arg == "--list-codes") {
      ListCodes();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (arg == "-" || arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      std::cerr << "tondcheck: unknown option '" << arg << "'\n";
      return Usage();
    }
  }
  if (inputs.empty()) return Usage();

  pytond::obs::JsonWriter json;
  if (config.json) json.BeginObject().Key("files").BeginArray();

  int exit_code = 0;
  for (const std::string& input : inputs) {
    render::SourceInput in = render::ReadInput(input);
    if (!in.ok) {
      if (config.json) {
        render::WriteParseErrorJson(json, input, in.error);
      } else {
        std::cerr << "tondcheck: cannot open '" << input << "'\n";
      }
      exit_code = std::max(exit_code, 2);
      continue;
    }
    exit_code = std::max(
        exit_code,
        CheckSource(in.label, in.text, config, config.json ? &json : nullptr));
  }

  if (config.json) {
    json.EndArray().Key("exit_code").Int(exit_code).EndObject();
    std::cout << json.str() << "\n";
  }
  return exit_code;
}
