// tondtrace: compile + run a @pytond source (or textual TondIR, or a
// built-in TPC-H query) with end-to-end tracing, and emit the trace as a
// human-readable tree, structured JSON, Chrome trace-event JSON, or a
// compile/exec QueryProfile summary.
//
//   tondtrace --tpch --query=6 --format=chrome > q6.trace.json
//   tondtrace --tpch=0.05 --query=1 --analyze --baseline
//   tondtrace --tir --format=tree examples/tondir/tpch_q1.tir
//
// Exit status: 0 ok, 1 compile/run failure, 2 usage error, 3 emitted JSON
// failed --check validation.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/session.h"
#include "obs/json.h"
#include "obs/query_profile.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "optimizer/passes.h"
#include "sqlgen/sqlgen.h"
#include "tondir/ir.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace {

using pytond::Result;
using pytond::Status;

enum class Format { kTree, kJson, kChrome, kProfile };

struct TraceConfig {
  Format format = Format::kTree;
  std::string profile = "duck";
  int olevel = 4;
  int threads = 1;
  int jobs = 1;                // concurrent query streams
  int tpch_query = 0;          // 0 = none
  double tpch_sf = 0;          // 0 = don't populate
  int64_t datasci_rows = 0;    // 0 = don't populate
  bool tir = false;
  bool compile_only = false;
  bool analyze = false;
  bool baseline = false;
  bool check = false;
  std::string out_path;
  std::vector<std::string> inputs;
};

int Usage() {
  std::cerr <<
      "usage: tondtrace [options] [file.py | file.tir ... | -]\n"
      "  --query=N         run built-in TPC-H query N (1..22); implies\n"
      "                    --tpch at a small default scale if not given\n"
      "  --tpch[=SF]       populate TPC-H tables (default SF 0.01)\n"
      "  --datasci[=ROWS]  populate the data-science datasets (crime\n"
      "                    index, hybrid, births, flights, covariance)\n"
      "  --tir             inputs are textual TondIR: trace the compile\n"
      "                    pipeline (verify -> optimize -> sqlgen) only\n"
      "  --compile-only    compile but do not execute\n"
      "  --analyze         also print EXPLAIN ANALYZE (to stderr)\n"
      "  --baseline        also run the eager interpreter baseline\n"
      "  --profile=P       duck | hyper | lingo (default duck)\n"
      "  --olevel=N        TondIR optimization preset 0..4 (default 4)\n"
      "  --threads=N       execution threads (default 1)\n"
      "  --jobs=N          run the query on N concurrent sessions threads\n"
      "                    racing on one database (shared worker pool +\n"
      "                    plan cache); per-job timings go to stderr\n"
      "  --format=F        tree | json | chrome | profile (default tree)\n"
      "  --check           validate emitted JSON; exit 3 on malformed\n"
      "  --out=FILE        write the trace to FILE instead of stdout\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, TraceConfig* cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--query=", 0) == 0) {
      cfg->tpch_query = std::atoi(value_of("--query=").c_str());
    } else if (arg == "--tpch") {
      cfg->tpch_sf = 0.01;
    } else if (arg.rfind("--tpch=", 0) == 0) {
      cfg->tpch_sf = std::atof(value_of("--tpch=").c_str());
    } else if (arg == "--datasci") {
      cfg->datasci_rows = 10000;
    } else if (arg.rfind("--datasci=", 0) == 0) {
      cfg->datasci_rows = std::atoll(value_of("--datasci=").c_str());
    } else if (arg == "--tir") {
      cfg->tir = true;
    } else if (arg == "--compile-only") {
      cfg->compile_only = true;
    } else if (arg == "--analyze") {
      cfg->analyze = true;
    } else if (arg == "--baseline") {
      cfg->baseline = true;
    } else if (arg == "--check") {
      cfg->check = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      cfg->profile = value_of("--profile=");
    } else if (arg.rfind("--olevel=", 0) == 0) {
      cfg->olevel = std::atoi(value_of("--olevel=").c_str());
    } else if (arg.rfind("--threads=", 0) == 0) {
      cfg->threads = std::atoi(value_of("--threads=").c_str());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      cfg->jobs = std::atoi(value_of("--jobs=").c_str());
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string f = value_of("--format=");
      if (f == "tree") cfg->format = Format::kTree;
      else if (f == "json") cfg->format = Format::kJson;
      else if (f == "chrome") cfg->format = Format::kChrome;
      else if (f == "profile") cfg->format = Format::kProfile;
      else return false;
    } else if (arg.rfind("--out=", 0) == 0) {
      cfg->out_path = value_of("--out=");
    } else if (arg == "-" || arg[0] != '-') {
      cfg->inputs.push_back(arg);
    } else {
      std::cerr << "tondtrace: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

Result<std::string> ReadInput(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

pytond::RunOptions MakeRunOptions(const TraceConfig& cfg,
                                  pytond::obs::TraceCollector* trace) {
  pytond::RunOptions opts;
  opts.optimization_level = cfg.olevel;
  opts.num_threads = cfg.threads;
  opts.trace = trace;
  if (cfg.profile == "hyper") {
    opts.profile = pytond::engine::BackendProfile::kCompiled;
  } else if (cfg.profile == "lingo") {
    opts.profile = pytond::engine::BackendProfile::kResearch;
  } else {
    opts.profile = pytond::engine::BackendProfile::kVectorized;
  }
  return opts;
}

/// Compile-only pipeline for a textual TondIR file: parse -> optimize
/// (preset, traced per pass) -> sqlgen. Returns the generated SQL.
Result<std::string> TraceTirFile(const std::string& label,
                                 const std::string& text,
                                 const TraceConfig& cfg,
                                 pytond::obs::TraceCollector* trace) {
  namespace obs = pytond::obs;
  obs::Span file_span(trace, "compile:" + label, "compile");
  obs::Span parse_span(trace, "parse", "phase");
  PYTOND_ASSIGN_OR_RETURN(pytond::tondir::Program program,
                          pytond::tondir::ParseProgram(text));
  parse_span.End();
  std::set<std::string> base;
  for (const auto& [rel, cols] : program.base_columns) base.insert(rel);
  pytond::opt::OptimizerOptions oopts =
      pytond::opt::OptimizerOptions::Preset(cfg.olevel);
  oopts.trace = trace;
  PYTOND_RETURN_IF_ERROR(pytond::opt::Optimize(&program, base, oopts));
  pytond::sqlgen::SqlGenOptions sopts;
  sopts.dialect = cfg.profile == "hyper" ? pytond::sqlgen::SqlDialect::kHyper
                                         : pytond::sqlgen::SqlDialect::kDuck;
  sopts.trace = trace;
  return pytond::sqlgen::GenerateSql(program, sopts);
}

int EmitTrace(const TraceConfig& cfg,
              const pytond::obs::TraceCollector& collector) {
  namespace obs = pytond::obs;
  std::string rendered;
  bool is_json = false;
  switch (cfg.format) {
    case Format::kTree:
      rendered = obs::FormatTree(collector);
      break;
    case Format::kJson:
      rendered = obs::ToJson(collector);
      is_json = true;
      break;
    case Format::kChrome:
      rendered = obs::ToChromeTrace(collector);
      is_json = true;
      break;
    case Format::kProfile:
      rendered = obs::SummarizeTrace(collector).ToString();
      break;
  }
  if (cfg.check && is_json) {
    Status ok = obs::ValidateJson(rendered);
    if (!ok.ok()) {
      std::cerr << "tondtrace: emitted JSON failed validation: "
                << ok.message() << "\n";
      return 3;
    }
  }
  if (!cfg.out_path.empty()) {
    std::ofstream f(cfg.out_path);
    if (!f) {
      std::cerr << "tondtrace: cannot write '" << cfg.out_path << "'\n";
      return 1;
    }
    f << rendered;
  } else {
    std::cout << rendered;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  namespace obs = pytond::obs;
  TraceConfig cfg;
  if (!ParseArgs(argc, argv, &cfg)) return Usage();
  if (cfg.inputs.empty() && cfg.tpch_query == 0) return Usage();
  if (cfg.tpch_query != 0 && (cfg.tpch_query < 1 || cfg.tpch_query > 22)) {
    std::cerr << "tondtrace: --query must be 1..22\n";
    return 2;
  }
  if (cfg.jobs < 1) {
    std::cerr << "tondtrace: --jobs must be >= 1\n";
    return Usage();
  }
  if (cfg.threads < 1) {
    std::cerr << "tondtrace: --threads must be >= 1\n";
    return Usage();
  }
  if (cfg.olevel < 0 || cfg.olevel > 4) {
    std::cerr << "tondtrace: --olevel must be 0..4\n";
    return Usage();
  }

  obs::TraceCollector collector;

  // Textual TondIR: compile-pipeline tracing only, one span tree per file.
  if (cfg.tir) {
    for (const std::string& input : cfg.inputs) {
      auto text = ReadInput(input);
      if (!text.ok()) {
        std::cerr << "tondtrace: " << text.status().ToString() << "\n";
        return 1;
      }
      auto sql = TraceTirFile(input == "-" ? "<stdin>" : input, *text, cfg,
                              &collector);
      if (!sql.ok()) {
        std::cerr << "tondtrace: " << input << ": "
                  << sql.status().ToString() << "\n";
        return 1;
      }
    }
    return EmitTrace(cfg, collector);
  }

  pytond::Session session;
  if (cfg.tpch_query != 0 && cfg.tpch_sf == 0) cfg.tpch_sf = 0.01;
  if (cfg.tpch_sf > 0) {
    Status st = pytond::workloads::tpch::Populate(&session.db(), cfg.tpch_sf);
    if (!st.ok()) {
      std::cerr << "tondtrace: TPC-H populate failed: " << st.ToString()
                << "\n";
      return 1;
    }
  }
  if (cfg.datasci_rows > 0) {
    namespace ds = pytond::workloads::datasci;
    Status st = ds::PopulateCrimeIndex(&session.db(), cfg.datasci_rows);
    if (st.ok()) st = ds::PopulateHybrid(&session.db(), cfg.datasci_rows);
    if (st.ok()) {
      st = ds::PopulateBirthAnalysis(&session.db(), cfg.datasci_rows);
    }
    if (st.ok()) st = ds::PopulateN3(&session.db(), cfg.datasci_rows);
    if (st.ok()) st = ds::PopulateN9(&session.db(), cfg.datasci_rows);
    if (st.ok()) st = ds::PopulateCovariance(&session.db(), 256, 8, 0.5);
    if (!st.ok()) {
      std::cerr << "tondtrace: datasci populate failed: " << st.ToString()
                << "\n";
      return 1;
    }
  }

  std::string source;
  if (cfg.tpch_query != 0) {
    source = pytond::workloads::tpch::GetQuery(cfg.tpch_query).source;
  } else {
    auto text = ReadInput(cfg.inputs[0]);
    if (!text.ok()) {
      std::cerr << "tondtrace: " << text.status().ToString() << "\n";
      return 1;
    }
    source = std::move(*text);
  }

  pytond::RunOptions opts = MakeRunOptions(cfg, &collector);
  auto compiled = session.Compile(source, opts);
  if (!compiled.ok()) {
    std::cerr << "tondtrace: compile failed: "
              << compiled.status().ToString() << "\n";
    return 1;
  }
  if (!cfg.compile_only && cfg.jobs > 1) {
    // Concurrent-query mode: N threads race the same query through the
    // shared worker pool and plan cache; each job is an independent query
    // (own options, no shared collector).
    namespace obs = pytond::obs;
    obs::Span jobs_span(&collector, "concurrent_jobs", "engine");
    std::vector<std::thread> workers;
    std::vector<double> job_ms(cfg.jobs, 0);
    std::vector<size_t> job_rows(cfg.jobs, 0);
    std::vector<std::string> job_errors(cfg.jobs);
    for (int j = 0; j < cfg.jobs; ++j) {
      workers.emplace_back([&, j] {
        uint64_t t0 = obs::NowNs();
        pytond::RunOptions jopts = MakeRunOptions(cfg, nullptr);
        auto r = session.Run(source, jopts);
        job_ms[j] = static_cast<double>(obs::NowNs() - t0) / 1e6;
        if (r.ok()) {
          job_rows[j] = (*r)->num_rows();
        } else {
          job_errors[j] = r.status().ToString();
        }
      });
    }
    for (std::thread& w : workers) w.join();
    jobs_span.AddCounter("jobs", cfg.jobs);
    auto cache = session.plan_cache_stats();
    jobs_span.AddCounter("plan_cache_hits",
                         static_cast<int64_t>(cache.hits));
    jobs_span.AddCounter("plan_cache_misses",
                         static_cast<int64_t>(cache.misses));
    if (const auto* pool = session.db().pool_if_created()) {
      jobs_span.AddCounter("pool_morsels",
                           static_cast<int64_t>(pool->total_morsels()));
      jobs_span.AddCounter("pool_steals",
                           static_cast<int64_t>(pool->total_steals()));
    }
    for (int j = 0; j < cfg.jobs; ++j) {
      if (!job_errors[j].empty()) {
        std::cerr << "tondtrace: job " << j << " failed: " << job_errors[j]
                  << "\n";
        return 1;
      }
      std::cerr << "tondtrace: job " << j << ": " << job_rows[j]
                << " rows in " << job_ms[j] << " ms\n";
    }
  } else if (!cfg.compile_only) {
    auto result = session.Execute(*compiled, opts);
    if (!result.ok()) {
      std::cerr << "tondtrace: execution failed: "
                << result.status().ToString() << "\n";
      return 1;
    }
    std::cerr << "tondtrace: " << (*result)->num_rows() << " result rows\n";
  }
  if (cfg.baseline) {
    auto base = session.RunBaseline(source, &collector);
    if (!base.ok()) {
      std::cerr << "tondtrace: baseline failed: "
                << base.status().ToString() << "\n";
      return 1;
    }
  }
  if (cfg.analyze) {
    pytond::engine::QueryOptions qopts;
    qopts.profile = opts.profile;
    qopts.num_threads = opts.num_threads;
    qopts.explain = pytond::engine::ExplainMode::kAnalyze;
    auto text = session.db().ExplainQuery(compiled->sql, qopts);
    if (!text.ok()) {
      std::cerr << "tondtrace: explain analyze failed: "
                << text.status().ToString() << "\n";
      return 1;
    }
    std::cerr << "-- EXPLAIN ANALYZE --\n" << *text;
  }
  return EmitTrace(cfg, collector);
}
