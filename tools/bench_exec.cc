// bench_exec: the runtime execution-latency baseline across the full
// workload suite — all 22 TPC-H queries plus the 8 data-science workloads,
// each at threads {1, 2, 4}.
//
//   bench_exec [--reps N] [--sf SF] [--datasci-rows N] > BENCH_exec.json
//   bench_exec --overhead-guard [--threshold PCT]
//
// Each workload is compiled once (plan cache), then executed `reps` times
// per thread count under BOTH execution strategies — push-based pipelined
// (the headline numbers: median_ms / p99_ms) and the materializing
// operator-at-a-time interpreter (materialized_median_ms). The per-entry
// `speedup` field is materialized/pipelined. The report also carries
// result rows and the per-query peak accounted bytes (QueryOptions::mem
// observer) from the pipelined runs. Compile time is deliberately
// excluded — BENCH_compile.json covers that axis.
//
// --overhead-guard instead measures the cost of the always-on metrics
// path itself: it alternates the registry between enabled and disabled
// across interleaved passes of the TPC-H suite and fails (exit 1) when
// the enabled median exceeds the disabled median by more than
// --threshold percent (plus a small absolute noise floor).
//
// Exit status: 0 ok, 1 run failure or guard breach, 2 usage error.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/session.h"
#include "obs/json.h"
#include "obs/metrics/memory_accountant.h"
#include "obs/trace.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace {

using pytond::Session;
using pytond::Status;

struct Workload {
  std::string name;
  std::string source;
};

struct BenchConfig {
  int reps = 5;
  double tpch_sf = 0.02;
  int64_t datasci_rows = 10000;
  bool overhead_guard = false;
  double threshold_pct = 2.0;
};

int Usage() {
  std::cerr <<
      "usage: bench_exec [options]\n"
      "  --reps N          executions per workload x thread count "
      "(default 5)\n"
      "  --sf SF           TPC-H scale factor (default 0.02)\n"
      "  --datasci-rows N  datasci dataset rows (default 10000)\n"
      "  --overhead-guard  measure metrics-on vs metrics-off TPC-H suite\n"
      "                    medians instead of emitting the baseline\n"
      "  --threshold PCT   guard failure threshold in percent (default 2)\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, BenchConfig* cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      cfg->reps = std::atoi(argv[++i]);
    } else if (arg == "--sf" && i + 1 < argc) {
      cfg->tpch_sf = std::atof(argv[++i]);
    } else if (arg == "--datasci-rows" && i + 1 < argc) {
      cfg->datasci_rows = std::atoll(argv[++i]);
    } else if (arg == "--overhead-guard") {
      cfg->overhead_guard = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      cfg->threshold_pct = std::atof(argv[++i]);
    } else {
      std::cerr << "bench_exec: unknown option '" << arg << "'\n";
      return false;
    }
  }
  if (cfg->reps < 1) {
    std::cerr << "bench_exec: --reps must be >= 1\n";
    return false;
  }
  if (cfg->tpch_sf <= 0) {
    std::cerr << "bench_exec: --sf must be > 0\n";
    return false;
  }
  if (cfg->datasci_rows < 1) {
    std::cerr << "bench_exec: --datasci-rows must be >= 1\n";
    return false;
  }
  if (cfg->threshold_pct <= 0) {
    std::cerr << "bench_exec: --threshold must be > 0\n";
    return false;
  }
  return true;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

double P99(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(
      std::ceil(0.99 * static_cast<double>(v.size()))) - 1;
  return v[std::min(idx, v.size() - 1)];
}

Status PopulateAll(Session* session, const BenchConfig& cfg) {
  PYTOND_RETURN_IF_ERROR(
      pytond::workloads::tpch::Populate(&session->db(), cfg.tpch_sf));
  namespace ds = pytond::workloads::datasci;
  PYTOND_RETURN_IF_ERROR(
      ds::PopulateCrimeIndex(&session->db(), cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(
      ds::PopulateBirthAnalysis(&session->db(), cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateN3(&session->db(), cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateN9(&session->db(), cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateHybrid(&session->db(), cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(
      ds::PopulateCovariance(&session->db(), 256, 8, 0.5));
  return Status::OK();
}

std::vector<Workload> AllWorkloads() {
  namespace ds = pytond::workloads::datasci;
  std::vector<Workload> workloads;
  for (const auto& q : pytond::workloads::tpch::AllQueries()) {
    workloads.push_back({q.name, q.source});
  }
  workloads.push_back({"crime_index", ds::CrimeIndexSource()});
  workloads.push_back({"birth_analysis", ds::BirthAnalysisSource()});
  workloads.push_back({"n3", ds::N3Source()});
  workloads.push_back({"n9", ds::N9Source()});
  workloads.push_back({"hybrid_matmul", ds::HybridMatMulSource(false)});
  workloads.push_back({"hybrid_covar", ds::HybridCovarSource(false)});
  workloads.push_back({"covar_dense", ds::CovarDenseSource()});
  workloads.push_back({"covar_sparse", ds::CovarSparseSource()});
  return workloads;
}

/// One timed pass of the TPC-H suite (compile cached, execute serial).
/// Returns total wall milliseconds, or a negative value on failure.
double TpchSuiteMs(Session* session,
                   const std::vector<Workload>& workloads) {
  uint64_t t0 = pytond::obs::NowNs();
  pytond::RunOptions opts;
  for (const Workload& w : workloads) {
    if (w.name.size() > 3) continue;  // q1..q22 only
    auto result = session->Run(w.source, opts);
    if (!result.ok()) {
      std::cerr << "bench_exec: " << w.name << ": "
                << result.status().ToString() << "\n";
      return -1;
    }
  }
  return static_cast<double>(pytond::obs::NowNs() - t0) / 1e6;
}

/// Interleaves metrics-on and metrics-off suite passes (A/B/A/B) so drift
/// hits both modes equally, then compares medians.
int RunOverheadGuard(const BenchConfig& cfg) {
  Session session;
  Status st = PopulateAll(&session, cfg);
  if (!st.ok()) {
    std::cerr << "bench_exec: populate failed: " << st.ToString() << "\n";
    return 1;
  }
  std::vector<Workload> workloads = AllWorkloads();
  pytond::obs::MetricsRegistry& metrics = session.db().metrics();

  // Warm the plan cache and page in both paths before timing.
  if (TpchSuiteMs(&session, workloads) < 0) return 1;

  const int passes = std::max(cfg.reps, 5);
  std::vector<double> on_ms, off_ms;
  for (int p = 0; p < passes; ++p) {
    metrics.set_enabled(false);
    double off = TpchSuiteMs(&session, workloads);
    metrics.set_enabled(true);
    double on = TpchSuiteMs(&session, workloads);
    if (off < 0 || on < 0) return 1;
    off_ms.push_back(off);
    on_ms.push_back(on);
  }

  double off_median = Median(off_ms);
  double on_median = Median(on_ms);
  // Small absolute floor so sub-millisecond scheduling jitter on a fast
  // suite cannot trip a percentage-only guard.
  const double noise_floor_ms = 5.0;
  double limit =
      off_median * (1.0 + cfg.threshold_pct / 100.0) + noise_floor_ms;
  bool ok = on_median <= limit;
  double overhead_pct =
      off_median > 0 ? 100.0 * (on_median - off_median) / off_median : 0;

  pytond::obs::JsonWriter json;
  json.BeginObject()
      .Key("bench").String("exec_overhead_guard")
      .Key("passes").Int(passes)
      .Key("suite_ms_metrics_off").Double(off_median)
      .Key("suite_ms_metrics_on").Double(on_median)
      .Key("overhead_pct").Double(overhead_pct)
      .Key("threshold_pct").Double(cfg.threshold_pct)
      .Key("noise_floor_ms").Double(noise_floor_ms)
      .Key("ok").Bool(ok)
      .EndObject();
  std::cout << json.str() << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  if (!ParseArgs(argc, argv, &cfg)) return Usage();
  if (cfg.overhead_guard) return RunOverheadGuard(cfg);

  Session session;
  Status st = PopulateAll(&session, cfg);
  if (!st.ok()) {
    std::cerr << "bench_exec: populate failed: " << st.ToString() << "\n";
    return 1;
  }
  std::vector<Workload> workloads = AllWorkloads();
  const std::vector<int> thread_counts = {1, 2, 4};

  pytond::obs::JsonWriter json;
  json.BeginObject()
      .Key("bench").String("exec")
      .Key("reps").Int(cfg.reps)
      .Key("tpch_sf").Double(cfg.tpch_sf)
      .Key("datasci_rows").Int(cfg.datasci_rows)
      .Key("threads").BeginArray();
  for (int t : thread_counts) json.Int(t);
  json.EndArray().Key("workloads").BeginArray();

  bool ok = true;
  double suite_ms = 0;  // sum of single-thread medians
  for (const Workload& w : workloads) {
    // Compile once; every timed rep is a pure execute.
    auto compiled = session.CompileCached(w.source, {});
    if (!compiled.ok()) {
      std::cerr << "bench_exec: " << w.name << ": compile failed: "
                << compiled.status().ToString() << "\n";
      ok = false;
      continue;
    }
    json.BeginObject().Key("name").String(w.name).Key("threads")
        .BeginObject();
    for (int threads : thread_counts) {
      // A/B both execution strategies, interleaved (A/B/A/B...) so clock
      // and cache drift hit both modes equally.
      std::vector<double> pipelined, materialized;
      uint64_t rows = 0;
      uint64_t peak_mem = 0;
      bool run_ok = true;
      for (int r = 0; r < cfg.reps && run_ok; ++r) {
        for (int mode = 0; mode < 2 && run_ok; ++mode) {
          pytond::RunOptions opts;
          opts.num_threads = threads;
          opts.pipeline = mode == 1;
          pytond::obs::MemoryAccountant mem;
          opts.mem = &mem;
          uint64_t t0 = pytond::obs::NowNs();
          auto result = session.Execute(**compiled, opts);
          double ms = static_cast<double>(pytond::obs::NowNs() - t0) / 1e6;
          if (!result.ok()) {
            std::cerr << "bench_exec: " << w.name << " threads=" << threads
                      << " pipeline=" << (mode == 1) << ": "
                      << result.status().ToString() << "\n";
            ok = run_ok = false;
            break;
          }
          (mode == 1 ? pipelined : materialized).push_back(ms);
          if (mode == 1) {
            rows = (*result)->num_rows();
            peak_mem = std::max(peak_mem, mem.peak());
          }
        }
      }
      if (!run_ok) continue;
      double median = Median(pipelined);
      double mat_median = Median(materialized);
      if (threads == 1) suite_ms += median;
      json.Key(std::to_string(threads)).BeginObject()
          .Key("median_ms").Double(median)
          .Key("p99_ms").Double(P99(pipelined))
          .Key("materialized_median_ms").Double(mat_median)
          .Key("speedup").Double(median > 0 ? mat_median / median : 0)
          .Key("rows").Int(static_cast<int64_t>(rows))
          .Key("peak_mem_bytes").Int(static_cast<int64_t>(peak_mem))
          .EndObject();
    }
    json.EndObject().EndObject();
  }

  json.EndArray()
      .Key("suite_exec_ms_1t").Double(suite_ms)
      .Key("ok").Bool(ok)
      .EndObject();
  std::cout << json.str() << "\n";
  return ok ? 0 : 1;
}
