// tondstat: drive a workload through a Session and expose the engine's
// always-on metrics registry (DESIGN.md §12) as JSON or Prometheus text.
//
//   tondstat --tpch --reps=3 --format=prom
//   tondstat --tpch=0.05 --query=6 --jobs=4 --threads=2
//   tondstat --tpch --watch=3          # per-window delta snapshots
//
// One-shot mode runs the selected load once and prints the cumulative
// snapshot. --watch=K reruns the load K times, printing the *delta*
// snapshot (counters and histogram buckets diffed, gauges instantaneous)
// after each window — the same numbers a scraping dashboard would derive.
//
// Exit status: 0 ok, 1 populate/run failure, 2 usage error, 3 emitted
// JSON failed --check validation.

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "obs/json.h"
#include "obs/metrics/metrics.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace {

using pytond::Session;
using pytond::Status;

struct StatConfig {
  double tpch_sf = 0;        // 0 = don't populate
  int64_t datasci_rows = 0;  // 0 = don't populate
  int query = 0;             // 0 = all 22 TPC-H queries
  int reps = 1;
  int jobs = 1;
  int threads = 1;
  int watch = 0;  // delta windows after the initial load
  bool prom = false;
  bool check = false;
};

int Usage() {
  std::cerr <<
      "usage: tondstat [options]\n"
      "  --tpch[=SF]       populate TPC-H tables (default SF 0.01)\n"
      "  --datasci[=ROWS]  populate crime-index + hybrid datasets and\n"
      "                    drive their workloads too\n"
      "  --query=N         drive only TPC-H query N (default: all 22)\n"
      "  --reps=N          repetitions of the load (default 1)\n"
      "  --jobs=N          concurrent session streams (default 1)\n"
      "  --threads=N       execution threads per query (default 1)\n"
      "  --watch=K         after the initial load, run K more windows and\n"
      "                    print a delta snapshot per window\n"
      "  --format=F        json | prom (default json)\n"
      "  --check           validate emitted JSON; exit 3 on malformed\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, StatConfig* cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--tpch") {
      cfg->tpch_sf = 0.01;
    } else if (arg.rfind("--tpch=", 0) == 0) {
      cfg->tpch_sf = std::atof(value_of("--tpch=").c_str());
    } else if (arg == "--datasci") {
      cfg->datasci_rows = 10000;
    } else if (arg.rfind("--datasci=", 0) == 0) {
      cfg->datasci_rows = std::atoll(value_of("--datasci=").c_str());
    } else if (arg.rfind("--query=", 0) == 0) {
      cfg->query = std::atoi(value_of("--query=").c_str());
    } else if (arg.rfind("--reps=", 0) == 0) {
      cfg->reps = std::atoi(value_of("--reps=").c_str());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      cfg->jobs = std::atoi(value_of("--jobs=").c_str());
    } else if (arg.rfind("--threads=", 0) == 0) {
      cfg->threads = std::atoi(value_of("--threads=").c_str());
    } else if (arg.rfind("--watch=", 0) == 0) {
      cfg->watch = std::atoi(value_of("--watch=").c_str());
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string f = value_of("--format=");
      if (f == "json") cfg->prom = false;
      else if (f == "prom") cfg->prom = true;
      else {
        std::cerr << "tondstat: --format must be json or prom\n";
        return false;
      }
    } else if (arg == "--check") {
      cfg->check = true;
    } else {
      std::cerr << "tondstat: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

/// One load window: every selected workload source, `reps` times, across
/// `jobs` concurrent session streams. Returns false on any failure.
bool RunLoad(Session* session, const StatConfig& cfg,
             const std::vector<std::string>& sources) {
  auto stream = [&](int* failures) {
    pytond::RunOptions opts;
    opts.num_threads = cfg.threads;
    for (int r = 0; r < cfg.reps; ++r) {
      for (const std::string& source : sources) {
        auto result = session->Run(source, opts);
        if (!result.ok()) {
          std::cerr << "tondstat: run failed: "
                    << result.status().ToString() << "\n";
          ++*failures;
          return;
        }
      }
    }
  };
  std::vector<int> failures(static_cast<size_t>(cfg.jobs), 0);
  if (cfg.jobs == 1) {
    stream(&failures[0]);
  } else {
    std::vector<std::thread> workers;
    for (int j = 0; j < cfg.jobs; ++j) {
      workers.emplace_back([&, j] { stream(&failures[j]); });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int f : failures) {
    if (f > 0) return false;
  }
  return true;
}

/// Renders and prints one snapshot; returns the process exit code.
int Emit(const StatConfig& cfg, const pytond::obs::MetricsSnapshot& snap) {
  std::string rendered = cfg.prom ? snap.ToPrometheus() : snap.ToJson();
  if (cfg.check && !cfg.prom) {
    Status ok = pytond::obs::ValidateJson(rendered);
    if (!ok.ok()) {
      std::cerr << "tondstat: emitted JSON failed validation: "
                << ok.message() << "\n";
      return 3;
    }
  }
  std::cout << rendered;
  if (!cfg.prom) std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  StatConfig cfg;
  if (!ParseArgs(argc, argv, &cfg)) return Usage();
  if (cfg.tpch_sf == 0 && cfg.datasci_rows == 0) cfg.tpch_sf = 0.01;
  if (cfg.query != 0 && (cfg.query < 1 || cfg.query > 22)) {
    std::cerr << "tondstat: --query must be 1..22\n";
    return Usage();
  }
  if (cfg.reps < 1) {
    std::cerr << "tondstat: --reps must be >= 1\n";
    return Usage();
  }
  if (cfg.jobs < 1) {
    std::cerr << "tondstat: --jobs must be >= 1\n";
    return Usage();
  }
  if (cfg.threads < 1) {
    std::cerr << "tondstat: --threads must be >= 1\n";
    return Usage();
  }
  if (cfg.watch < 0) {
    std::cerr << "tondstat: --watch must be >= 0\n";
    return Usage();
  }

  Session session;
  std::vector<std::string> sources;
  if (cfg.tpch_sf > 0) {
    Status st = pytond::workloads::tpch::Populate(&session.db(), cfg.tpch_sf);
    if (!st.ok()) {
      std::cerr << "tondstat: TPC-H populate failed: " << st.ToString()
                << "\n";
      return 1;
    }
    if (cfg.query != 0) {
      sources.push_back(pytond::workloads::tpch::GetQuery(cfg.query).source);
    } else {
      for (const auto& q : pytond::workloads::tpch::AllQueries()) {
        sources.push_back(q.source);
      }
    }
  }
  if (cfg.datasci_rows > 0) {
    namespace ds = pytond::workloads::datasci;
    Status st = ds::PopulateCrimeIndex(&session.db(), cfg.datasci_rows);
    if (st.ok()) st = ds::PopulateHybrid(&session.db(), cfg.datasci_rows);
    if (!st.ok()) {
      std::cerr << "tondstat: datasci populate failed: " << st.ToString()
                << "\n";
      return 1;
    }
    sources.push_back(ds::CrimeIndexSource());
    sources.push_back(ds::HybridMatMulSource(false));
  }

  if (!RunLoad(&session, cfg, sources)) return 1;
  pytond::obs::MetricsSnapshot snap = session.db().StatsSnapshot();
  int rc = Emit(cfg, snap);
  if (rc != 0) return rc;

  for (int w = 0; w < cfg.watch; ++w) {
    pytond::obs::MetricsSnapshot prev = snap;
    if (!RunLoad(&session, cfg, sources)) return 1;
    snap = session.db().StatsSnapshot();
    rc = Emit(cfg, snap.DeltaSince(prev));
    if (rc != 0) return rc;
  }
  return 0;
}
