// tondstat: drive a workload through a Session and expose the engine's
// always-on metrics registry (DESIGN.md §12) as JSON or Prometheus text.
//
//   tondstat --tpch --reps=3 --format=prom
//   tondstat --tpch=0.05 --query=6 --jobs=4 --threads=2
//   tondstat --tpch --watch=3          # per-window delta snapshots
//   tondstat --tpch --serve=8 --watch=3 --format=serve
//
// One-shot mode runs the selected load once and prints the cumulative
// snapshot. --watch=K reruns the load K times, printing the *delta*
// snapshot (counters and histogram buckets diffed, gauges instantaneous)
// after each window — the same numbers a scraping dashboard would derive.
//
// --serve=N drives the load through a ConnectionManager with N client
// connections on the PREPARE/EXECUTE fast path instead of plain session
// streams, so the tond_serve_* family lights up. --format=serve renders
// a human-oriented serve dashboard (QPS, prepared hit rate, admission
// state, wait percentiles) instead of the raw exposition; it requires
// --serve.
//
// Exit status: 0 ok, 1 populate/run failure, 2 usage error, 3 emitted
// JSON failed --check validation.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "obs/json.h"
#include "obs/metrics/metrics.h"
#include "obs/trace.h"
#include "serve/connection_manager.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace {

using pytond::Session;
using pytond::Status;

struct StatConfig {
  double tpch_sf = 0;        // 0 = don't populate
  int64_t datasci_rows = 0;  // 0 = don't populate
  int query = 0;             // 0 = all 22 TPC-H queries
  int reps = 1;
  int jobs = 1;
  int threads = 1;
  int watch = 0;  // delta windows after the initial load
  int serve = 0;  // 0 = session streams; N = serve-path connections
  bool prom = false;
  bool serve_format = false;
  bool check = false;
};

int Usage() {
  std::cerr <<
      "usage: tondstat [options]\n"
      "  --tpch[=SF]       populate TPC-H tables (default SF 0.01)\n"
      "  --datasci[=ROWS]  populate crime-index + hybrid datasets and\n"
      "                    drive their workloads too\n"
      "  --query=N         drive only TPC-H query N (default: all 22)\n"
      "  --reps=N          repetitions of the load (default 1)\n"
      "  --jobs=N          concurrent session streams (default 1)\n"
      "  --threads=N       execution threads per query (default 1)\n"
      "  --watch=K         after the initial load, run K more windows and\n"
      "                    print a delta snapshot per window\n"
      "  --serve[=N]       drive the load through N serve-path connections\n"
      "                    (PREPARE/EXECUTE + admission; default 4)\n"
      "  --format=F        json | prom | serve (default json; serve\n"
      "                    requires --serve)\n"
      "  --check           validate emitted JSON; exit 3 on malformed\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, StatConfig* cfg) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--tpch") {
      cfg->tpch_sf = 0.01;
    } else if (arg.rfind("--tpch=", 0) == 0) {
      cfg->tpch_sf = std::atof(value_of("--tpch=").c_str());
    } else if (arg == "--datasci") {
      cfg->datasci_rows = 10000;
    } else if (arg.rfind("--datasci=", 0) == 0) {
      cfg->datasci_rows = std::atoll(value_of("--datasci=").c_str());
    } else if (arg.rfind("--query=", 0) == 0) {
      cfg->query = std::atoi(value_of("--query=").c_str());
    } else if (arg.rfind("--reps=", 0) == 0) {
      cfg->reps = std::atoi(value_of("--reps=").c_str());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      cfg->jobs = std::atoi(value_of("--jobs=").c_str());
    } else if (arg.rfind("--threads=", 0) == 0) {
      cfg->threads = std::atoi(value_of("--threads=").c_str());
    } else if (arg.rfind("--watch=", 0) == 0) {
      cfg->watch = std::atoi(value_of("--watch=").c_str());
    } else if (arg == "--serve") {
      cfg->serve = 4;
    } else if (arg.rfind("--serve=", 0) == 0) {
      cfg->serve = std::atoi(value_of("--serve=").c_str());
      if (cfg->serve < 1) {
        std::cerr << "tondstat: --serve must be >= 1\n";
        return false;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string f = value_of("--format=");
      if (f == "json") {
        cfg->prom = false;
        cfg->serve_format = false;
      } else if (f == "prom") {
        cfg->prom = true;
        cfg->serve_format = false;
      } else if (f == "serve") {
        cfg->prom = false;
        cfg->serve_format = true;
      } else {
        std::cerr << "tondstat: --format must be json, prom, or serve\n";
        return false;
      }
    } else if (arg == "--check") {
      cfg->check = true;
    } else {
      std::cerr << "tondstat: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return true;
}

/// One load window: every selected workload source, `reps` times, across
/// `jobs` concurrent session streams. Returns false on any failure.
bool RunLoad(Session* session, const StatConfig& cfg,
             const std::vector<std::string>& sources) {
  auto stream = [&](int* failures) {
    pytond::RunOptions opts;
    opts.num_threads = cfg.threads;
    for (int r = 0; r < cfg.reps; ++r) {
      for (const std::string& source : sources) {
        auto result = session->Run(source, opts);
        if (!result.ok()) {
          std::cerr << "tondstat: run failed: "
                    << result.status().ToString() << "\n";
          ++*failures;
          return;
        }
      }
    }
  };
  std::vector<int> failures(static_cast<size_t>(cfg.jobs), 0);
  if (cfg.jobs == 1) {
    stream(&failures[0]);
  } else {
    std::vector<std::thread> workers;
    for (int j = 0; j < cfg.jobs; ++j) {
      workers.emplace_back([&, j] { stream(&failures[j]); });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int f : failures) {
    if (f > 0) return false;
  }
  return true;
}

/// One serve-mode load window: `serve` client connections, each sweeping
/// the sources `reps` times through the PREPARE/EXECUTE fast path.
bool RunServeLoad(pytond::serve::ConnectionManager* mgr,
                  const StatConfig& cfg,
                  const std::vector<std::string>& sources) {
  std::vector<int> failures(static_cast<size_t>(cfg.serve), 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < cfg.serve; ++c) {
    clients.emplace_back([&, c] {
      auto conn = mgr->Connect();
      pytond::RunOptions opts;
      opts.num_threads = cfg.threads;
      for (int r = 0; r < cfg.reps; ++r) {
        for (const std::string& source : sources) {
          auto result = conn->Run(source, opts);
          if (!result.ok()) {
            // Rejections are an expected answer under a tight admission
            // config, not a tool failure; anything else is.
            if (result.status().code() == pytond::StatusCode::kRejected) {
              continue;
            }
            std::cerr << "tondstat: serve run failed: "
                      << result.status().ToString() << "\n";
            ++failures[c];
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int f : failures) {
    if (f > 0) return false;
  }
  return true;
}

/// The --format=serve dashboard: the tond_serve_* family, pretty-printed.
/// `window_ms` is the wall clock of the load window the snapshot (or
/// delta) covers, giving an honest QPS denominator.
void EmitServe(const pytond::obs::MetricsSnapshot& snap, double window_ms) {
  const uint64_t queries = snap.CounterValue("tond_serve_queries_total");
  const uint64_t hits =
      snap.CounterValue("tond_serve_prepared_hits_total");
  const uint64_t misses =
      snap.CounterValue("tond_serve_prepared_misses_total");
  const uint64_t fallbacks =
      snap.CounterValue("tond_serve_param_fallback_total");
  const double qps =
      window_ms > 0 ? 1000.0 * static_cast<double>(queries) / window_ms : 0;
  const double hit_rate =
      hits + misses > 0 ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0;
  std::printf("serve: queries=%llu qps=%.1f window=%.1fs\n",
              static_cast<unsigned long long>(queries), qps,
              window_ms / 1000.0);
  std::printf(
      "  prepared: hits=%llu misses=%llu hit_rate=%.1f%% fallbacks=%llu\n",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), hit_rate,
      static_cast<unsigned long long>(fallbacks));
  std::printf(
      "  admission: connections=%lld inflight=%lld queue_depth=%lld "
      "rejected(queue_full=%llu timeout=%llu memory=%llu)\n",
      static_cast<long long>(snap.GaugeValue("tond_serve_connections")),
      static_cast<long long>(snap.GaugeValue("tond_serve_inflight")),
      static_cast<long long>(snap.GaugeValue("tond_serve_queue_depth")),
      static_cast<unsigned long long>(
          snap.CounterValue("tond_serve_rejected_queue_full_total")),
      static_cast<unsigned long long>(
          snap.CounterValue("tond_serve_rejected_timeout_total")),
      static_cast<unsigned long long>(
          snap.CounterValue("tond_serve_rejected_memory_total")));
  const pytond::obs::HistogramSnapshot* wait =
      snap.FindHistogram("tond_serve_wait_ns");
  if (wait != nullptr && wait->count > 0) {
    std::printf("  wait: p50=%.3fms p99=%.3fms max=%.3fms\n",
                wait->Quantile(0.50) / 1e6, wait->Quantile(0.99) / 1e6,
                static_cast<double>(wait->max) / 1e6);
  } else {
    std::printf("  wait: (no admissions in window)\n");
  }
  std::fflush(stdout);
}

/// Renders and prints one snapshot; returns the process exit code.
int Emit(const StatConfig& cfg, const pytond::obs::MetricsSnapshot& snap) {
  std::string rendered = cfg.prom ? snap.ToPrometheus() : snap.ToJson();
  if (cfg.check && !cfg.prom) {
    Status ok = pytond::obs::ValidateJson(rendered);
    if (!ok.ok()) {
      std::cerr << "tondstat: emitted JSON failed validation: "
                << ok.message() << "\n";
      return 3;
    }
  }
  std::cout << rendered;
  if (!cfg.prom) std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  StatConfig cfg;
  if (!ParseArgs(argc, argv, &cfg)) return Usage();
  if (cfg.tpch_sf == 0 && cfg.datasci_rows == 0) cfg.tpch_sf = 0.01;
  if (cfg.query != 0 && (cfg.query < 1 || cfg.query > 22)) {
    std::cerr << "tondstat: --query must be 1..22\n";
    return Usage();
  }
  if (cfg.reps < 1) {
    std::cerr << "tondstat: --reps must be >= 1\n";
    return Usage();
  }
  if (cfg.jobs < 1) {
    std::cerr << "tondstat: --jobs must be >= 1\n";
    return Usage();
  }
  if (cfg.threads < 1) {
    std::cerr << "tondstat: --threads must be >= 1\n";
    return Usage();
  }
  if (cfg.watch < 0) {
    std::cerr << "tondstat: --watch must be >= 0\n";
    return Usage();
  }
  if (cfg.serve_format && cfg.serve == 0) {
    std::cerr << "tondstat: --format=serve requires --serve\n";
    return Usage();
  }
  if (cfg.serve > 0 && cfg.jobs > 1) {
    std::cerr << "tondstat: --serve and --jobs are mutually exclusive "
                 "(connections are the concurrency in serve mode)\n";
    return Usage();
  }

  Session session;
  std::vector<std::string> sources;
  if (cfg.tpch_sf > 0) {
    Status st = pytond::workloads::tpch::Populate(&session.db(), cfg.tpch_sf);
    if (!st.ok()) {
      std::cerr << "tondstat: TPC-H populate failed: " << st.ToString()
                << "\n";
      return 1;
    }
    if (cfg.query != 0) {
      sources.push_back(pytond::workloads::tpch::GetQuery(cfg.query).source);
    } else {
      for (const auto& q : pytond::workloads::tpch::AllQueries()) {
        sources.push_back(q.source);
      }
    }
  }
  if (cfg.datasci_rows > 0) {
    namespace ds = pytond::workloads::datasci;
    Status st = ds::PopulateCrimeIndex(&session.db(), cfg.datasci_rows);
    if (st.ok()) st = ds::PopulateHybrid(&session.db(), cfg.datasci_rows);
    if (!st.ok()) {
      std::cerr << "tondstat: datasci populate failed: " << st.ToString()
                << "\n";
      return 1;
    }
    sources.push_back(ds::CrimeIndexSource());
    sources.push_back(ds::HybridMatMulSource(false));
  }

  // Serve mode shares the populated database; the manager's default
  // admission config is deliberately tight enough that oversubscribed
  // runs exercise the queue (rejections surface in the dashboard).
  std::unique_ptr<pytond::serve::ConnectionManager> mgr;
  if (cfg.serve > 0) {
    mgr = std::make_unique<pytond::serve::ConnectionManager>(
        session.shared_db(), pytond::serve::ServeConfig{});
  }
  auto run_window = [&](double* window_ms) {
    const uint64_t t0 = pytond::obs::NowNs();
    const bool ok = cfg.serve > 0 ? RunServeLoad(mgr.get(), cfg, sources)
                                  : RunLoad(&session, cfg, sources);
    *window_ms = static_cast<double>(pytond::obs::NowNs() - t0) / 1e6;
    return ok;
  };

  double window_ms = 0;
  if (!run_window(&window_ms)) return 1;
  pytond::obs::MetricsSnapshot snap = session.db().StatsSnapshot();
  int rc = 0;
  if (cfg.serve_format) {
    EmitServe(snap, window_ms);
  } else {
    rc = Emit(cfg, snap);
  }
  if (rc != 0) return rc;

  for (int w = 0; w < cfg.watch; ++w) {
    pytond::obs::MetricsSnapshot prev = snap;
    if (!run_window(&window_ms)) return 1;
    snap = session.db().StatsSnapshot();
    if (cfg.serve_format) {
      EmitServe(snap.DeltaSince(prev), window_ms);
    } else {
      rc = Emit(cfg, snap.DeltaSince(prev));
      if (rc != 0) return rc;
    }
  }
  return 0;
}
