// tondlint: semantic lint for textual TondIR programs.
//
//   tondlint [options] file.tir [file2.tir ...]
//   tondlint -                       # read one program from stdin
//
// Parses each input with tondir::ParseProgram (which understands the
// '@base R(col, ...).' directive for declaring extensional relations) and
// runs analysis::VerifyProgram over it, printing one diagnostic per line:
//
//   q1.tir: rule 2, atom 1: error[T002]: relation 'lineitem' accessed ...
//
// Exit status: 0 clean, 1 any error (or any warning with --werror),
// 2 usage/parse failure.

#include <iostream>
#include <string>
#include <vector>

#include "analysis/dataflow/dataflow.h"
#include "analysis/render.h"
#include "analysis/verifier.h"
#include "obs/json.h"
#include "tondir/ir.h"

namespace render = pytond::analysis::render;

namespace {

struct LintConfig {
  bool werror = false;
  bool quiet = false;          // suppress per-file "OK" lines
  bool implicit_bases = false; // undeclared read relations become bases
  bool json = false;           // machine-readable output on stdout
  bool deep = true;            // dataflow deep-lint tier T020..T032
  bool facts = false;          // dump the per-relation fact lattice
  bool explain = false;        // print each diagnostic's inference chain
};

int Usage() {
  std::cerr
      << "usage: tondlint [options] <file.tir ...|->\n"
         "  -                  read a program from stdin\n"
         "  --werror           treat warnings as errors (exit 1)\n"
         "  --implicit-bases   reads of undeclared relations implicitly\n"
         "                     declare base relations instead of T001\n"
         "  --quiet            only print diagnostics, no per-file summary\n"
         "  --json             emit one JSON document on stdout instead of\n"
         "                     plain-text lines (same exit codes)\n"
         "  --no-deep          skip the dataflow deep-lint tier (T020..T032)\n"
         "  --facts            dump the inferred per-relation fact lattice\n"
         "                     (types, nullability, keys, ranges)\n"
         "  --explain-diag     print each diagnostic's inference chain\n"
         "  --list-codes       print the diagnostic code table and exit\n";
  return 2;
}

void ListCodes() {
  using namespace pytond::analysis::codes;
  const struct { const char* code; const char* what; } table[] = {
      {kUndefinedRelation, "body reads an unknown relation"},
      {kArityMismatch, "relation accessed with the wrong arity"},
      {kUndefinedHeadVar, "head variable not defined in the body"},
      {kUndefinedGroupVar, "group variable not defined in the body"},
      {kColNamesArity, "head col_names/vars arity mismatch"},
      {kUndefinedVar, "comparison references an undefined variable"},
      {kExistsLeak, "variable bound only inside exists(..) used outside"},
      {kUngroupedHeadVar, "non-aggregate head var of grouped rule"},
      {kNestedAggregate, "nested aggregate"},
      {kAggregateOutsideAssignment, "aggregate in a filter or exists body"},
      {kSortWithoutLimitNotSink, "sort without limit on a non-sink rule"},
      {kSortKeyNotInHead, "sort key not among head vars"},
      {kBadOuterMarker, "malformed outer-join marker"},
      {kUnknownMarker, "unknown external marker atom (warning)"},
      {kDeadRule, "rule not reachable from the sink (warning)"},
      {kRelationRedefined, "relation redefined / shadows a base"},
      {kConstRelHeterogeneous, "constant relation mixes value types"},
      {kConstRelEmpty, "empty constant relation"},
      {kUidWithoutAccess, "uid() in a body without a relation access"},
      {kTypeMismatch, "comparison/join over incompatible value types"},
      {kAlwaysFalsePredicate, "filter contradicts derived facts (warning)"},
      {kAlwaysTruePredicate, "filter implied by derived facts (warning)"},
      {kNullableArithmetic, "arithmetic over a nullable column (warning)"},
      {kUnreachableColumn, "column never read by any consumer (warning)"},
      {kRedundantDistinct, "distinct over rows already unique (warning)"},
      {kConstantSortKey, "sort key is provably constant (warning)"},
      {kAggregateOverEmpty, "aggregate over a provably empty body (warning)"},
      {kDivisionByZero, "divisor is provably zero (warning)"},
      {kRedundantGroupBy, "group keys already unique per row (warning)"},
      {kStringOpOnNonString, "string operation on non-string type (warning)"},
      {kNullComparison, "comparison against NULL is never true (warning)"},
      {kEmptyResult, "sink relation is provably empty (warning)"},
  };
  for (const auto& row : table) {
    std::cout << row.code << "  " << row.what << "\n";
  }
}

/// Lints one program; returns 0 clean, 1 findings, 2 parse error. With
/// --json, appends one per-file object to `json` (an open array) instead
/// of writing plain-text lines.
int LintSource(const std::string& label, const std::string& text,
               const LintConfig& config, pytond::obs::JsonWriter* json) {
  auto parsed = pytond::tondir::ParseProgram(text);
  if (!parsed.ok()) {
    if (json != nullptr) {
      render::WriteParseErrorJson(*json, label, parsed.status().message());
    } else {
      std::cerr << label << ": parse error: " << parsed.status().message()
                << "\n";
    }
    return 2;
  }
  pytond::analysis::VerifyOptions options;
  options.implicit_bases = config.implicit_bases;
  options.deep_lints = config.deep;
  for (const auto& [rel, cols] : parsed->base_columns) {
    options.base_relations.insert(rel);
  }
  auto diags = pytond::analysis::VerifyProgram(*parsed, options);
  bool failed = render::AnyFailed(diags, config.werror);
  if (config.facts && json == nullptr) {
    pytond::analysis::dataflow::AnalyzeOptions aopts;
    aopts.base_relations = options.base_relations;
    auto facts = pytond::analysis::dataflow::AnalyzeProgram(*parsed, aopts);
    std::cout << label << ": facts:\n" << facts.Dump();
  }
  if (json != nullptr) {
    json->BeginObject()
        .Key("file").String(label)
        .Key("ok").Bool(!failed)
        .Key("rules").Int(static_cast<int64_t>(parsed->rules.size()))
        .Key("diagnostics").BeginArray();
    for (const auto& d : diags) {
      render::WriteDiagnosticJson(*json, d, render::Location::kRuleAtom);
    }
    json->EndArray().EndObject();
  } else {
    for (const auto& d : diags) {
      render::PrintDiagnostic(std::cout, label, d, config.explain);
    }
    if (!failed && !config.quiet) {
      std::cout << label << ": OK (" << parsed->rules.size() << " rules)\n";
    }
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  LintConfig config;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      config.werror = true;
    } else if (arg == "--implicit-bases") {
      config.implicit_bases = true;
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else if (arg == "--json") {
      config.json = true;
    } else if (arg == "--no-deep") {
      config.deep = false;
    } else if (arg == "--facts") {
      config.facts = true;
    } else if (arg == "--explain-diag") {
      config.explain = true;
    } else if (arg == "--list-codes") {
      ListCodes();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (arg == "-" || arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      std::cerr << "tondlint: unknown option '" << arg << "'\n";
      return Usage();
    }
  }
  if (inputs.empty()) return Usage();

  pytond::obs::JsonWriter json;
  if (config.json) json.BeginObject().Key("files").BeginArray();

  int exit_code = 0;
  for (const std::string& input : inputs) {
    render::SourceInput in = render::ReadInput(input);
    if (!in.ok) {
      if (config.json) {
        render::WriteParseErrorJson(json, input, in.error);
      } else {
        std::cerr << "tondlint: cannot open '" << input << "'\n";
      }
      exit_code = std::max(exit_code, 2);
      continue;
    }
    exit_code = std::max(
        exit_code,
        LintSource(in.label, in.text, config, config.json ? &json : nullptr));
  }

  if (config.json) {
    json.EndArray().Key("exit_code").Int(exit_code).EndObject();
    std::cout << json.str() << "\n";
  }
  return exit_code;
}
