// bench_compile: compile-path latency across the full workload suite.
//
//   bench_compile [--reps N] > BENCH_compile.json
//
// Compiles all 22 TPC-H queries plus the 8 data-science workloads through
// the Session frontend (plan cache off) several times each and reports the
// median wall-clock per workload, broken down by pipeline phase (parse,
// anf, analyze, translate, verify, optimize, sqlgen). The `analyze` phase
// is the frontend translatability analyzer (DESIGN.md §11); its share of
// total compile time quantifies the static-analysis overhead.
//
// Each workload is also run once with the physical plan verifier forced
// on (DESIGN.md §15); the `tond_verify_ns_total` metric delta becomes the
// per-workload `verify_ms`. The suite-level `verify_share` (verify time
// over compile wall-clock) is the number scripts/check.sh gates < 2%.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/session.h"
#include "obs/json.h"
#include "obs/metrics/metrics.h"
#include "obs/query_profile.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace {

using pytond::Session;

struct Workload {
  std::string name;
  std::string source;
};

struct Sample {
  double total_ms = 0;
  std::vector<std::pair<std::string, double>> phases;
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: bench_compile [--reps N]\n";
      return 2;
    }
  }

  Session session;
  auto st = pytond::workloads::tpch::Populate(&session.db(), 0.001);
  if (!st.ok()) {
    std::cerr << "tpch populate: " << st.message() << "\n";
    return 1;
  }
  namespace ds = pytond::workloads::datasci;
  for (const auto& populate :
       {ds::PopulateCrimeIndex, ds::PopulateBirthAnalysis, ds::PopulateN3,
        ds::PopulateN9, ds::PopulateHybrid}) {
    st = populate(&session.db(), 64, 7);
    if (!st.ok()) {
      std::cerr << "datasci populate: " << st.message() << "\n";
      return 1;
    }
  }
  st = ds::PopulateCovariance(&session.db(), 64, 4, 0.5);
  if (!st.ok()) {
    std::cerr << "covariance populate: " << st.message() << "\n";
    return 1;
  }

  std::vector<Workload> workloads;
  for (const auto& q : pytond::workloads::tpch::AllQueries()) {
    workloads.push_back({q.name, q.source});
  }
  workloads.push_back({"crime_index", ds::CrimeIndexSource()});
  workloads.push_back({"birth_analysis", ds::BirthAnalysisSource()});
  workloads.push_back({"n3", ds::N3Source()});
  workloads.push_back({"n9", ds::N9Source()});
  workloads.push_back({"hybrid_matmul", ds::HybridMatMulSource(false)});
  workloads.push_back({"hybrid_covar", ds::HybridCovarSource(false)});
  workloads.push_back({"covar_dense", ds::CovarDenseSource()});
  workloads.push_back({"covar_sparse", ds::CovarSparseSource()});

  pytond::obs::JsonWriter json;
  json.BeginObject()
      .Key("bench").String("compile")
      .Key("reps").Int(reps)
      .Key("workloads").BeginArray();

  session.db().metrics().set_enabled(true);
  pytond::obs::Counter& verify_ns =
      session.db().metrics().counter("tond_verify_ns_total");

  double suite_total = 0;
  double suite_analyze = 0;
  double suite_verify = 0;
  bool ok = true;
  for (const Workload& w : workloads) {
    pytond::RunOptions options;
    options.use_plan_cache = false;
    std::vector<double> totals;
    std::vector<std::pair<std::string, double>> last_phases;
    for (int r = 0; r < reps; ++r) {
      pytond::obs::TraceCollector trace;
      options.trace = &trace;
      auto compiled = session.Compile(w.source, options);
      if (!compiled.ok()) {
        std::cerr << w.name << ": " << compiled.status().message() << "\n";
        ok = false;
        break;
      }
      pytond::obs::QueryProfile profile = pytond::obs::SummarizeTrace(trace);
      totals.push_back(profile.compile_ms);
      last_phases = profile.compile_phases;
    }
    if (totals.empty()) continue;

    // One verified execution: the counter delta is exactly the wall-clock
    // the P-series verifier spent on this workload's bind + per-pass +
    // pipeline-build stages.
    pytond::RunOptions vopts;
    vopts.use_plan_cache = false;
    vopts.verify_plans = true;
    uint64_t ns_before = verify_ns.Value();
    auto ran = session.Run(w.source, vopts);
    if (!ran.ok()) {
      std::cerr << w.name << " (verified run): " << ran.status().ToString()
                << "\n";
      ok = false;
    }
    double verify_ms =
        static_cast<double>(verify_ns.Value() - ns_before) / 1e6;
    suite_verify += verify_ms;

    double median = Median(totals);
    suite_total += median;
    json.BeginObject()
        .Key("name").String(w.name)
        .Key("compile_ms").Double(median)
        .Key("verify_ms").Double(verify_ms)
        .Key("phases").BeginObject();
    for (const auto& [phase, ms] : last_phases) {
      json.Key(phase).Double(ms);
      if (phase == "analyze") suite_analyze += ms;
    }
    json.EndObject().EndObject();
  }

  json.EndArray()
      .Key("suite_compile_ms").Double(suite_total)
      .Key("suite_analyze_ms").Double(suite_analyze)
      .Key("analyze_share")
      .Double(suite_total > 0 ? suite_analyze / suite_total : 0)
      .Key("suite_verify_ms").Double(suite_verify)
      .Key("verify_share")
      .Double(suite_total > 0 ? suite_verify / suite_total : 0)
      .Key("ok").Bool(ok)
      .EndObject();
  std::cout << json.str() << "\n";
  return ok ? 0 : 1;
}
