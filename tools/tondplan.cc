// tondplan: physical plan & pipeline verifier CLI (P-series).
//
//   tondplan [options] query.sql [more.sql ...]
//   tondplan -                        # read one query from stdin
//
// Declares table schemas with comment directives, then runs the full
// physical verification ladder over each input — bind, every optimizer
// pass (with per-pass blame), and the pipeline decomposition — printing
// one located diagnostic per finding:
//
//   q.sql: [optimizer:limit_pushdown] root.0:Project: error[P001]: ...
//
//   -- @table lineitem(l_orderkey:int64, l_shipdate:date, l_price:float64)
//   SELECT l_orderkey, sum(l_price) FROM lineitem GROUP BY l_orderkey;
//
// `--corrupt=KIND[:SEED]` applies a seeded structural mutation after
// binding (schema, type) or after pipeline build (dag, sink, mask) so CI
// goldens can pin that each corruption class is actually caught.
//
// Exit status: 0 clean, 1 any error (or any warning with --werror),
// 2 usage/parse/bind failure.

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/physical/physical.h"
#include "analysis/render.h"
#include "engine/exec/pipeline.h"
#include "engine/plan/binder.h"
#include "engine/plan/optimizer.h"
#include "engine/sql/parser.h"
#include "obs/json.h"

namespace render = pytond::analysis::render;
namespace physical = pytond::analysis::physical;
using pytond::DataType;
using pytond::Schema;
using pytond::analysis::Diagnostic;

namespace {

struct PlanConfig {
  bool werror = false;
  bool quiet = false;       // suppress per-file "OK" lines
  bool json = false;        // machine-readable output on stdout
  bool dump = false;        // print the optimized plan + pipeline shape
  bool explain = false;     // print each diagnostic's why-chain
  bool pipeline = true;     // also verify the pipeline decomposition
  std::string corrupt;      // mutation kind ("" = none)
  unsigned corrupt_seed = 0;
};

int Usage() {
  std::cerr
      << "usage: tondplan [options] <query.sql ...|->\n"
         "  -                  read a query from stdin\n"
         "  --werror           treat warnings as errors (exit 1)\n"
         "  --quiet            only print diagnostics, no per-file summary\n"
         "  --json             emit one JSON document on stdout instead of\n"
         "                     plain-text lines (same exit codes)\n"
         "  --dump             print the optimized plan tree and pipeline\n"
         "                     decomposition (source/ops/sink/deps/masks)\n"
         "  --explain-diag     print each diagnostic's why-chain\n"
         "  --no-pipeline      skip the pipeline decomposition checks\n"
         "  --corrupt=K[:S]    apply a seeded mutation before verifying:\n"
         "                     schema | type | dag | sink | mask\n"
         "  --list-codes       print the diagnostic code table and exit\n"
         "\n"
         "Declare table schemas with comment directives:\n"
         "  -- @table lineitem(l_orderkey:int64, l_shipdate:date, ...)\n";
  return 2;
}

void ListCodes() {
  using namespace pytond::analysis::codes;
  const struct { const char* code; const char* what; } table[] = {
      {kColRefOutOfRange, "column reference outside the input schema"},
      {kColRefTypeMismatch, "expression type disagrees with the schema"},
      {kBadChildCount, "operator has the wrong number of children"},
      {kSchemaMismatch, "node schema disagrees with derived schema"},
      {kMissingMember, "required expression/field is absent"},
      {kScanSchemaMismatch, "scan schema disagrees with the catalog"},
      {kNonBoolPredicate, "predicate is not boolean-typed"},
      {kJoinKeyTypeMismatch, "join key sides of incompatible types"},
      {kBuildSideOnNonInner, "build_left set on a non-inner join"},
      {kBadAggSpec, "malformed aggregate spec / output type"},
      {kSortKeyOutOfRange, "sort/window key outside the input schema"},
      {kOuterRefEscaped, "correlated outer reference survived binding"},
      {kPipelineIdOrder, "pipeline ids not in index order"},
      {kPipelineDepCycle, "dependency does not point strictly backwards"},
      {kPipelineBadSource, "morsel source malformed for the sink kind"},
      {kNonStreamingOp, "non-streaming operator in a pipeline chain"},
      {kBadBuildInput, "join probe's build input missing or invalid"},
      {kChainBroken, "operator chain input != previous stage output"},
      {kBreakerSinkMismatch, "sink kind disagrees with the breaker node"},
      {kBadPipelineOutput, "pipeline output is not its last stage"},
      {kReadOutsideDeps, "pipeline reads an output it never declared"},
      {kNodeCoverage, "plan node unassigned or doubly assigned"},
      {kLivenessMaskKillsLive, "liveness mask drops a column still read"},
      {kParamIndexOutOfRange, "parameter slot index out of range"},
      {kParamFolded, "parameter folded into a constant"},
      {kParamSeedTypeMismatch, "parameter seed type drifted from slot"},
      {kSkeletonSlotMismatch, "skeleton SQL / declared slots disagree"},
  };
  for (const auto& row : table) {
    std::cout << row.code << "  " << row.what << "\n";
  }
}

// ===================================================================
// `-- @table name(col:type, ...)` directive parsing
// ===================================================================

bool ParseType(const std::string& s, DataType* out) {
  if (s == "int64") *out = DataType::kInt64;
  else if (s == "float64") *out = DataType::kFloat64;
  else if (s == "string") *out = DataType::kString;
  else if (s == "bool") *out = DataType::kBool;
  else if (s == "date") *out = DataType::kDate;
  else return false;
  return true;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Extracts every `-- @table name(col:type, ...)` directive. Returns
/// false (with `error` set) on a malformed directive.
bool ParseDirectives(const std::string& text,
                     std::map<std::string, Schema>* tables,
                     std::string* error) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = Trim(line);
    const std::string prefix = "-- @table ";
    if (t.rfind(prefix, 0) != 0) continue;
    const std::string body = Trim(t.substr(prefix.size()));
    size_t open = body.find('(');
    size_t close = body.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      *error = "malformed @table directive: " + t;
      return false;
    }
    const std::string name = Trim(body.substr(0, open));
    Schema schema;
    std::istringstream cols(body.substr(open + 1, close - open - 1));
    std::string col;
    while (std::getline(cols, col, ',')) {
      col = Trim(col);
      if (col.empty()) continue;
      size_t colon = col.find(':');
      DataType ty = DataType::kInt64;
      if (colon == std::string::npos ||
          !ParseType(Trim(col.substr(colon + 1)), &ty)) {
        *error = "bad column spec '" + col + "' in @table " + name +
                 " (want name:int64|float64|string|bool|date)";
        return false;
      }
      schema.Add(Trim(col.substr(0, colon)), ty);
    }
    if (name.empty() || schema.num_columns() == 0) {
      *error = "empty @table directive: " + t;
      return false;
    }
    (*tables)[name] = schema;
  }
  return true;
}

// ===================================================================
// Seeded corruption (mirrors the fuzzer's mutation classes)
// ===================================================================

void CollectMutable(pytond::engine::LogicalPlan* p,
                    std::vector<pytond::engine::LogicalPlan*>* out) {
  out->push_back(p);
  for (auto& c : p->children) CollectMutable(c.get(), out);
}

/// Plan-tier mutations, applied to the optimized plan before the final
/// verification round. Deterministic in (kind, seed).
void CorruptPlan(const std::string& kind, unsigned seed,
                 pytond::engine::LogicalPlan* root) {
  std::vector<pytond::engine::LogicalPlan*> nodes;
  CollectMutable(root, &nodes);
  pytond::engine::LogicalPlan* n = nodes[seed % nodes.size()];
  if (kind == "schema") {
    if (n->schema.num_columns() == 0) n = root;
    if (n->schema.num_columns() > 0) {
      n->schema.names.pop_back();
      n->schema.types.pop_back();
    }
  } else if (kind == "type") {
    if (n->schema.num_columns() == 0) n = root;
    if (n->schema.num_columns() > 0) {
      size_t c = seed % n->schema.num_columns();
      n->schema.types[c] = n->schema.types[c] == DataType::kString
                               ? DataType::kInt64
                               : DataType::kString;
    }
  }
}

/// Pipeline-tier mutations, applied to the built PipelinePlan.
void CorruptPipelines(const std::string& kind, unsigned seed,
                      pytond::engine::PipelinePlan* pp) {
  auto& ps = pp->pipelines;
  pytond::engine::PipelineDesc& d = ps[seed % ps.size()];
  if (kind == "dag") {
    d.deps.push_back(d.id);  // self-dependency: scheduler would deadlock
  } else if (kind == "sink") {
    d.sink = d.sink == pytond::engine::PipelineSinkKind::kResult
                 ? pytond::engine::PipelineSinkKind::kAggregate
                 : pytond::engine::PipelineSinkKind::kResult;
  } else if (kind == "mask") {
    for (auto& p : ps) {
      for (size_t i = 0; i < p.ops.size(); ++i) {
        size_t cols = p.ops[i]->schema.num_columns();
        if (cols == 0) continue;
        // Kill a column the chain still reads: all-dead mask.
        p.op_masks[i].assign(cols, 0);
        return;
      }
    }
  }
}

// ===================================================================
// Verification ladder over one input
// ===================================================================

struct StageResult {
  std::string stage;
  std::vector<Diagnostic> diags;
};

const char* SinkName(pytond::engine::PipelineSinkKind k) {
  switch (k) {
    case pytond::engine::PipelineSinkKind::kResult: return "result";
    case pytond::engine::PipelineSinkKind::kAggregate: return "aggregate";
    case pytond::engine::PipelineSinkKind::kSerial: return "serial";
    case pytond::engine::PipelineSinkKind::kCompute: return "compute";
  }
  return "?";
}

void DumpPipelines(std::ostream& os,
                   const pytond::engine::PipelinePlan& pp) {
  for (const auto& d : pp.pipelines) {
    os << "pipeline " << d.id << ": source=";
    if (d.source != nullptr) {
      os << (d.source->table_name.empty() ? "values" : d.source->table_name);
    } else if (d.source_pipeline >= 0) {
      os << "pipeline:" << d.source_pipeline;
    } else {
      os << "none";
    }
    os << " ops=" << d.ops.size() << " sink=" << SinkName(d.sink);
    if (!d.deps.empty()) {
      os << " deps=[";
      for (size_t i = 0; i < d.deps.size(); ++i) {
        os << (i ? "," : "") << d.deps[i];
      }
      os << "]";
    }
    size_t masked = 0;
    for (const auto& m : d.op_masks) {
      if (!m.empty()) ++masked;
    }
    if (masked > 0) os << " masked_ops=" << masked;
    os << "\n";
  }
}

/// Verifies one query; returns 0 clean, 1 findings, 2 parse/bind error.
int CheckSource(const std::string& label, const std::string& text,
                const PlanConfig& config, pytond::obs::JsonWriter* json) {
  using pytond::engine::BackendProfile;
  using pytond::engine::BinderCatalog;
  using pytond::engine::PlanPtr;

  std::map<std::string, Schema> tables;
  std::string derr;
  if (!ParseDirectives(text, &tables, &derr)) {
    if (json != nullptr) {
      render::WriteParseErrorJson(*json, label, derr);
    } else {
      std::cerr << label << ": " << derr << "\n";
    }
    return 2;
  }

  auto parsed = pytond::engine::sql::ParseSql(text);
  if (!parsed.ok()) {
    if (json != nullptr) {
      render::WriteParseErrorJson(*json, label, parsed.status().message());
    } else {
      std::cerr << label << ": parse error: " << parsed.status().message()
                << "\n";
    }
    return 2;
  }

  // Schema-only CTE scope: bind each CTE in order and register its output
  // schema (no execution — tondplan never touches data).
  std::map<std::string, Schema> temp_schemas;
  BinderCatalog bc;
  bc.schema = [&](const std::string& name) -> const Schema* {
    auto it = temp_schemas.find(name);
    if (it != temp_schemas.end()) return &it->second;
    auto jt = tables.find(name);
    return jt == tables.end() ? nullptr : &jt->second;
  };
  bc.row_count = [](const std::string&) { return 1000.0; };

  auto bind = [&](const pytond::engine::sql::SelectStmt& stmt)
      -> pytond::Result<PlanPtr> {
    if (stmt.is_values()) {
      return pytond::Status::InvalidArgument(
          "VALUES-only CTE bodies carry no plan to verify");
    }
    pytond::engine::sql::SelectStmt core = stmt;
    core.ctes.clear();
    return BindSelect(core, bc, BackendProfile::kVectorized);
  };

  for (const auto& cte : (*parsed)->ctes) {
    if (cte.select->is_values()) {
      // Schema inference mirrors Database::RunSelect's VALUES path.
      Schema s;
      const auto& rows = cte.select->values_rows;
      for (size_t i = 0; i < rows[0].size(); ++i) {
        DataType ty = DataType::kInt64;
        for (const auto& row : rows) {
          if (!row[i].is_null()) {
            ty = row[i].type();
            break;
          }
        }
        std::string name = i < cte.column_names.size()
                               ? cte.column_names[i]
                               : "col" + std::to_string(i);
        s.Add(name, ty);
      }
      temp_schemas[cte.name] = s;
      continue;
    }
    auto plan = bind(*cte.select);
    if (!plan.ok()) {
      if (json != nullptr) {
        render::WriteParseErrorJson(*json, label, plan.status().message());
      } else {
        std::cerr << label << ": cte " << cte.name
                  << ": bind error: " << plan.status().message() << "\n";
      }
      return 2;
    }
    Schema s = (*plan)->schema;
    for (size_t i = 0; i < cte.column_names.size() && i < s.names.size();
         ++i) {
      s.names[i] = cte.column_names[i];
    }
    temp_schemas[cte.name] = s;
  }

  auto plan = bind(**parsed);
  if (!plan.ok()) {
    if (json != nullptr) {
      render::WriteParseErrorJson(*json, label, plan.status().message());
    } else {
      std::cerr << label << ": bind error: " << plan.status().message()
                << "\n";
    }
    return 2;
  }

  physical::VerifyOptions vopts;
  vopts.table_schema = bc.schema;
  physical::VerifyStats stats;
  std::vector<StageResult> stages;

  stages.push_back({"bind", physical::VerifyPlan(**plan, vopts, &stats)});

  pytond::engine::PlanPassHooks hooks;
  hooks.after_pass = [&](const char* pass) {
    stages.push_back({std::string("optimizer:") + pass,
                      physical::VerifyPlan(**plan, vopts, &stats)});
    return pytond::Status::OK();
  };
  pytond::Status opt = OptimizePlan(*plan, BackendProfile::kVectorized,
                                    bc.row_count, &hooks);
  if (!opt.ok()) {
    std::cerr << label << ": optimizer error: " << opt.message() << "\n";
    return 2;
  }

  if (config.corrupt == "schema" || config.corrupt == "type") {
    CorruptPlan(config.corrupt, config.corrupt_seed, plan->get());
    stages.push_back({"corrupt:" + config.corrupt,
                      physical::VerifyPlan(**plan, vopts, &stats)});
  }

  pytond::engine::PipelinePlan pp;
  if (config.pipeline) {
    pp = pytond::engine::BuildPipelines(**plan);
    stages.push_back(
        {"pipeline_build", physical::VerifyPipelines(**plan, pp, &stats)});
    if (config.corrupt == "dag" || config.corrupt == "sink" ||
        config.corrupt == "mask") {
      CorruptPipelines(config.corrupt, config.corrupt_seed, &pp);
      stages.push_back({"corrupt:" + config.corrupt,
                        physical::VerifyPipelines(**plan, pp, &stats)});
    }
  }

  bool failed = false;
  for (const StageResult& s : stages) {
    failed = failed || render::AnyFailed(s.diags, config.werror);
  }

  if (json != nullptr) {
    json->BeginObject()
        .Key("file").String(label)
        .Key("ok").Bool(!failed)
        .Key("pipelines")
        .Int(static_cast<int64_t>(pp.pipelines.size()))
        .Key("checks").Int(static_cast<int64_t>(stats.checks))
        .Key("stages").BeginArray();
    for (const StageResult& s : stages) {
      json->BeginObject()
          .Key("stage").String(s.stage)
          .Key("diagnostics").BeginArray();
      for (const Diagnostic& d : s.diags) {
        render::WriteDiagnosticJson(*json, d, render::Location::kNode);
      }
      json->EndArray().EndObject();
    }
    json->EndArray().EndObject();
  } else {
    if (config.dump) {
      std::cout << (*plan)->ToString();
      if (config.pipeline) DumpPipelines(std::cout, pp);
    }
    for (const StageResult& s : stages) {
      for (const Diagnostic& d : s.diags) {
        render::PrintDiagnostic(std::cout, label + ": [" + s.stage + "]", d,
                                config.explain);
      }
    }
    if (!failed && !config.quiet) {
      std::cout << label << ": OK (" << stages.size() << " stages, "
                << stats.checks << " checks";
      if (config.pipeline) {
        std::cout << ", " << pp.pipelines.size() << " pipelines";
      }
      std::cout << ")\n";
    }
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  PlanConfig config;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      config.werror = true;
    } else if (arg == "--quiet") {
      config.quiet = true;
    } else if (arg == "--json") {
      config.json = true;
    } else if (arg == "--dump") {
      config.dump = true;
    } else if (arg == "--explain-diag") {
      config.explain = true;
    } else if (arg == "--no-pipeline") {
      config.pipeline = false;
    } else if (arg.rfind("--corrupt=", 0) == 0) {
      std::string spec = arg.substr(10);
      size_t colon = spec.find(':');
      if (colon != std::string::npos) {
        config.corrupt_seed =
            static_cast<unsigned>(std::atoi(spec.c_str() + colon + 1));
        spec = spec.substr(0, colon);
      }
      config.corrupt = spec;
      if (spec != "schema" && spec != "type" && spec != "dag" &&
          spec != "sink" && spec != "mask") {
        std::cerr << "tondplan: unknown corruption '" << spec << "'\n";
        return Usage();
      }
    } else if (arg == "--list-codes") {
      ListCodes();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (arg == "-" || arg[0] != '-') {
      inputs.push_back(arg);
    } else {
      std::cerr << "tondplan: unknown option '" << arg << "'\n";
      return Usage();
    }
  }
  if (inputs.empty()) return Usage();

  pytond::obs::JsonWriter json;
  if (config.json) json.BeginObject().Key("files").BeginArray();

  int exit_code = 0;
  for (const std::string& input : inputs) {
    render::SourceInput in = render::ReadInput(input);
    if (!in.ok) {
      if (config.json) {
        render::WriteParseErrorJson(json, input, in.error);
      } else {
        std::cerr << "tondplan: cannot open '" << input << "'\n";
      }
      exit_code = std::max(exit_code, 2);
      continue;
    }
    exit_code = std::max(
        exit_code,
        CheckSource(in.label, in.text, config, config.json ? &json : nullptr));
  }

  if (config.json) {
    json.EndArray().Key("exit_code").Int(exit_code).EndObject();
    std::cout << json.str() << "\n";
  }
  return exit_code;
}
