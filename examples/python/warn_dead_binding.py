# F010: `unused` is computed and never read again — dead work the
# translator would happily ship to the database for nothing.
# @base t(id, a, b:float64)

@pytond()
def dead(t):
    unused = t[t.a > 1]
    keep = t[t.b > 0.5]
    out = keep[['id', 'b']]
    return out
