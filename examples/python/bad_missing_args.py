# F013: isin([]) with an empty list is always-false and almost certainly
# a bug; the analyzer rejects it with a fix hint.
# @base events(id, kind:string, ts)

@pytond()
def filtered(events):
    out = events[events.kind.isin([])]
    return out
