# F006: the boolean mask is built over `a` but filters `b`. Relational
# frames have no positional row alignment — the analyzer demands the mask
# derive from the frame being filtered (merge the frames instead).
# @base a(id, x, y:float64)
# @base b(id, x, z:float64)

@pytond()
def cross(a, b):
    mask = a.x > 3
    out = b[mask]
    return out
