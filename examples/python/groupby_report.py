# Group-by aggregation pipeline: compiles fine, but the agg() is a flow
# breaker (paper §III-B) — tondcheck flags the region boundary as F011.
# @base sales(id, region:string, product:string, amount:float64, qty)

@pytond()
def sales_report(sales):
    valid = sales[sales.amount > 0.0]
    g = valid.groupby(['region']).agg(
        revenue=('amount', 'sum'),
        items=('qty', 'sum'),
        orders=('amount', 'count'))
    out = g.sort_values(by=['revenue'], ascending=[False])
    return out
