# F005: comparing a string column against an integer literal — the
# analyzer's type lattice catches the mismatch before the engine sees it.
# @base users(id, name:string, age)

@pytond()
def bad_compare(users):
    out = users[users.name > 7]
    return out
