# The Weld Crime Index hybrid pipeline (paper §V-A): Pandas -> NumPy
# einsum -> Pandas. The einsum contraction and the final agg() are flow
# breakers; everything else is translatable.
# @base crime_data(id, total_population:float64, adult_population:float64, num_robberies:float64)
# @base crime_weights(id, w:float64)

@pytond()
def crime_index(crime_data, crime_weights):
    big = crime_data[crime_data.total_population > 10000.0]
    a = big.to_numpy()
    idx = np.einsum('ij,j->i', a, crime_weights.to_numpy())
    d = pd.DataFrame(idx)
    safe = d[d.c0 < 300000.0]
    out = safe.agg(total_index=('c0', 'sum'), cities=('c0', 'count'))
    return out
