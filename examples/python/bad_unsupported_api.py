# F004: .rolling() is not in the translatable pandas surface — the
# binding is classified untranslatable with an explicit reason.
# @base prices(id, day, close:float64)

@pytond()
def rolling_mean(prices):
    w = prices.rolling(7)
    return w
