# Clean relational pipeline: selection + projection + sort, no flow
# breakers anywhere — tondcheck reports OK.
# @base orders(id, o_custkey, o_totalprice:float64, o_status:string)

@pytond()
def big_orders(orders):
    big = orders[orders.o_totalprice > 1000.0]
    open_big = big[big.o_status == 'O']
    view = open_big[['o_custkey', 'o_totalprice']]
    out = view.sort_values(by=['o_totalprice'], ascending=[False]).head(10)
    return out
