# F001: the filter reads 'shipdate' but the schema says 'ship_date' —
# the analyzer suggests the nearest column name in its hint.
# @base shipments(id, ship_date:date, weight:float64, dest:string)

@pytond()
def late(shipments):
    heavy = shipments[shipments.weight > 10.0]
    out = heavy[heavy.shipdate > '1995-01-01']
    return out
