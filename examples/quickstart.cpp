// Quickstart: load a table, write a Pandas-style @pytond function, look at
// the generated TondIR and SQL, and execute it — the full Figure-1
// pipeline in ~60 lines.

#include <cstdio>

#include "core/session.h"

int main() {
  using namespace pytond;

  Session session;

  // 1. Put some data in the database (normally it already lives there —
  //    that's the paper's premise).
  Table employees;
  (void)employees.AddColumn("emp_id", Column::Int64({1, 2, 3, 4, 5, 6}));
  (void)employees.AddColumn(
      "dept", Column::String({"eng", "eng", "sales", "sales", "hr", "eng"}));
  (void)employees.AddColumn(
      "salary", Column::Float64({120, 135, 95, 88, 70, 150}));
  TableConstraints pk;
  pk.primary_key = {"emp_id"};
  if (!session.db().CreateTable("employees", std::move(employees), pk).ok()) {
    return 1;
  }

  // 2. The data-science function, exactly as a Pandas user writes it.
  const char* source = R"PY(
@pytond()
def top_departments(employees):
    senior = employees[employees.salary > 80]
    g = senior.groupby(['dept']).agg(headcount=('emp_id', 'count'),
                                     avg_salary=('salary', 'mean'))
    out = g.sort_values(by=['avg_salary'], ascending=[False])
    return out
)PY";

  // 3. Compile: Python -> ANF -> TondIR -> optimized TondIR -> SQL.
  auto compiled = session.Compile(source);
  if (!compiled.ok()) {
    std::printf("compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("--- TondIR (before optimization) ---\n%s\n",
              compiled->tondir_before.c_str());
  std::printf("--- TondIR (after O4) ---\n%s\n",
              compiled->tondir_after.c_str());
  std::printf("--- generated SQL ---\n%s\n\n", compiled->sql.c_str());

  // 4. Execute on the bundled engine.
  auto result = session.Execute(*compiled);
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("--- result ---\n%s\n", (*result)->ToString().c_str());

  // 5. Cross-check against the eager baseline (what plain Pandas/NumPy
  //    would have computed).
  auto baseline = session.RunBaseline(source);
  std::string diff;
  bool same = baseline.ok() &&
              Table::UnorderedEquals(**result, *baseline, 1e-9, &diff);
  std::printf("matches eager baseline: %s\n", same ? "yes" : diff.c_str());
  return same ? 0 : 1;
}
