// Hybrid covariance: the paper's Figure-2 end-to-end example — join two
// tables with Pandas, convert to a NumPy array, compute a covariance
// (gram) matrix with einsum — compiled to SQL in dense and sparse (COO)
// layouts, with the optimization ablation O0..O4 timed.

#include <chrono>
#include <cstdio>

#include "core/session.h"
#include "workloads/datasci.h"

int main() {
  using namespace pytond;
  using Clock = std::chrono::steady_clock;

  Session session;
  if (!workloads::datasci::PopulateHybrid(&session.db(), 50000).ok()) {
    return 1;
  }
  if (!workloads::datasci::PopulateCovariance(&session.db(), 20000, 16, 0.05)
           .ok()) {
    return 1;
  }

  const char* hybrid = workloads::datasci::HybridCovarSource(false);
  std::printf("=== hybrid covariance (Pandas + einsum) ===\n%s\n", hybrid);

  // Optimization ablation: each TondIR pass removes work from the SQL.
  std::printf("%-4s %-10s %-12s %s\n", "opt", "time", "sql bytes",
              "(lower level = Grizzly-simulated)");
  for (int level = 0; level <= 4; ++level) {
    RunOptions opts;
    opts.optimization_level = level;
    auto compiled = session.Compile(hybrid, opts);
    if (!compiled.ok()) return 1;
    auto t0 = Clock::now();
    auto r = session.Execute(*compiled, opts);
    auto ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
    if (!r.ok()) {
      std::printf("O%d failed: %s\n", level, r.status().ToString().c_str());
      return 1;
    }
    std::printf("O%-3d %7.2f ms %9zu\n", level, ms, compiled->sql.size());
  }

  // Dense vs sparse tensor layout on a 5%-dense matrix (Figure 9's
  // sparsity effect).
  std::printf("\n=== dense vs sparse layout, 20000x16 matrix at 5%% density "
              "===\n");
  for (const char* src : {workloads::datasci::CovarDenseSource(),
                          workloads::datasci::CovarSparseSource()}) {
    auto compiled = session.Compile(src);
    if (!compiled.ok()) {
      std::printf("compile failed: %s\n",
                  compiled.status().ToString().c_str());
      return 1;
    }
    auto t0 = Clock::now();
    auto r = session.Execute(*compiled);
    auto ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
    if (!r.ok()) {
      std::printf("failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-30s %8.2f ms  (%zu result rows)\n",
                compiled->function_name.c_str(), ms, (*r)->num_rows());
  }
  return 0;
}
