-- Clean CTE + probe join: the CTE materializes through its own pipeline,
-- the final select probes it — exercising build-side deps, chain
-- continuity, and cross-pipeline liveness masks.
-- @table orders(o_orderkey:int64, o_custkey:int64, o_totalprice:float64)
-- @table customer(c_custkey:int64, c_name:string, c_nationkey:int64)
WITH big_orders AS (
  SELECT o_custkey, o_totalprice FROM orders WHERE o_totalprice > 100.0
)
SELECT c.c_name, b.o_totalprice
FROM customer AS c JOIN big_orders AS b ON c.c_custkey = b.o_custkey
