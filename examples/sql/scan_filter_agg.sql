-- Clean scan -> filter -> aggregate -> sort -> limit chain: binds, passes
-- every optimizer pass, and decomposes into an aggregate-sink pipeline
-- plus a serial sort/limit tail. The shape tondplan's --corrupt kinds
-- mutate in EXPERIMENTS.md's corruption-repro recipe.
-- @table lineitem(l_orderkey:int64, l_quantity:float64, l_extendedprice:float64, l_returnflag:string, l_shipdate:date)
SELECT l_returnflag, SUM(l_extendedprice) AS revenue, COUNT(*) AS n
FROM lineitem
WHERE l_quantity > 10.0
GROUP BY l_returnflag
ORDER BY revenue DESC
LIMIT 5
