-- Clean inline-VALUES CTE joined against a base table: the VALUES body
-- binds with an inferred schema, then gets renamed by the CTE's column
-- list — the rename path P004 guards when a later pass drops a column.
-- @table events(ev_kind:int64, ev_count:int64)
WITH kinds(kind_id, kind_name) AS (
  VALUES (1, 'create'), (2, 'update'), (3, 'delete')
)
SELECT k.kind_name, SUM(e.ev_count) AS total
FROM events AS e JOIN kinds AS k ON e.ev_kind = k.kind_id
GROUP BY k.kind_name
