// TPC-H demo: generates a small TPC-H database, then compiles and runs a
// chosen query (default Q3) on every backend profile, showing the
// generated SQL and per-system timings — a miniature of the paper's
// Figure 3 for one query.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/session.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

int main(int argc, char** argv) {
  using namespace pytond;
  using Clock = std::chrono::steady_clock;

  int query_id = argc > 1 ? std::atoi(argv[1]) : 3;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.01;
  if (query_id < 1 || query_id > 22) {
    std::printf("usage: %s [query 1..22] [scale factor]\n", argv[0]);
    return 1;
  }

  Session session;
  std::printf("generating TPC-H data at SF %.3f ...\n", sf);
  if (!workloads::tpch::Populate(&session.db(), sf).ok()) return 1;
  std::printf("lineitem rows: %zu\n\n",
              session.db().catalog().GetTable("lineitem")->num_rows());

  const auto& q = workloads::tpch::GetQuery(query_id);
  std::printf("=== %s (Pandas dialect) ===\n%s\n", q.name, q.source);

  auto compiled = session.Compile(q.source);
  if (!compiled.ok()) {
    std::printf("compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("=== generated SQL ===\n%s\n\n", compiled->sql.c_str());

  auto time_it = [&](const char* label, auto fn) {
    auto t0 = Clock::now();
    auto r = fn();
    auto ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
    if (!r.ok()) {
      std::printf("%-28s failed: %s\n", label, r.status().ToString().c_str());
      return;
    }
    std::printf("%-28s %8.2f ms\n", label, ms);
  };

  time_it("Python (eager baseline)",
          [&] { return session.RunBaseline(q.source); });
  for (int level : {0, 4}) {
    for (auto profile : {engine::BackendProfile::kVectorized,
                         engine::BackendProfile::kCompiled}) {
      RunOptions opts;
      opts.optimization_level = level;
      opts.profile = profile;
      std::string label =
          std::string(level == 0 ? "GrizzlySim" : "PyTond") + " / " +
          engine::BackendProfileName(profile);
      time_it(label.c_str(), [&] { return session.Run(q.source, opts); });
    }
  }

  auto result = session.Run(q.source);
  if (result.ok()) {
    std::printf("\n=== result (first rows) ===\n%s\n",
                (*result)->ToString(10).c_str());
  }
  return 0;
}
