// Crime Index: the hybrid Pandas -> NumPy -> Pandas notebook workload
// (filter a DataFrame, run a weighted einsum over the array view, come
// back to a DataFrame and aggregate). Shows the compiled SQL and compares
// PyTond against the eager baseline.

#include <chrono>
#include <cstdio>

#include "core/session.h"
#include "workloads/datasci.h"

int main() {
  using namespace pytond;
  using Clock = std::chrono::steady_clock;

  Session session;
  if (!workloads::datasci::PopulateCrimeIndex(&session.db(), 200000).ok()) {
    return 1;
  }

  const char* source = workloads::datasci::CrimeIndexSource();
  std::printf("=== crime index notebook ===\n%s\n", source);

  auto compiled = session.Compile(source);
  if (!compiled.ok()) {
    std::printf("compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("=== generated SQL ===\n%s\n\n", compiled->sql.c_str());

  auto t0 = Clock::now();
  auto baseline = session.RunBaseline(source);
  double eager_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (!baseline.ok()) return 1;

  t0 = Clock::now();
  auto result = session.Execute(*compiled);
  double pytond_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::string diff;
  bool same = Table::UnorderedEquals(**result, *baseline, 1e-6, &diff);
  std::printf("Python baseline: %8.2f ms\n", eager_ms);
  std::printf("PyTond:          %8.2f ms  (%.1fx)\n", pytond_ms,
              eager_ms / pytond_ms);
  std::printf("results match:   %s\n", same ? "yes" : diff.c_str());
  std::printf("\n%s\n", (*result)->ToString().c_str());
  return same ? 0 : 1;
}
