#!/usr/bin/env bash
# Run clang-tidy (config in .clang-tidy) over all first-party sources.
#
# Degrades gracefully: containers without clang-tidy exit 0 with a notice
# so check.sh stays runnable everywhere; CI images that ship the tool get
# the full gate. Pass extra args through to clang-tidy (e.g. --fix).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (install LLVM" \
       "tools to enable this gate)"
  exit 0
fi

jobs=$(nproc 2>/dev/null || echo 4)

# clang-tidy needs a compilation database; reconfigure the default preset
# with export enabled (a no-op when already configured that way).
cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

mapfile -t sources < <(find src tools bench -name '*.cc' | sort)
echo "tidy.sh: linting ${#sources[@]} files with $(clang-tidy --version |
    sed -n 's/.*version \([0-9.]*\).*/clang-tidy \1/p' | head -1)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p build -quiet -j "$jobs" "${sources[@]}"
else
  for f in "${sources[@]}"; do
    clang-tidy -p build --quiet "$@" "$f"
  done
fi

echo "tidy.sh: clean"
