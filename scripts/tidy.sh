#!/usr/bin/env bash
# Run clang-tidy (config in .clang-tidy) over all first-party sources.
#
# Coverage is an asserted invariant, not an accident of a glob: every
# first-party source directory is listed explicitly, each listed
# directory must exist and contribute at least one translation unit
# (so a refactor that moves code — the way src/serve/ and src/core/
# once slipped out of the sweep — fails loudly here instead of
# silently shrinking the lint surface), and any *.cc outside the list
# fails the gate until the list is updated.
#
# Degrades gracefully: containers without clang-tidy exit 0 with a notice
# so check.sh stays runnable everywhere; CI images that ship the tool get
# the full gate. Pass extra args through to clang-tidy (e.g. --fix).
set -euo pipefail
cd "$(dirname "$0")/.."

# Every directory that owns first-party C++ translation units. Keep in
# sync with the add_subdirectory() calls in the top-level CMakeLists.
lint_dirs=(
  src/analysis
  src/common
  src/core
  src/engine
  src/frontend
  src/obs
  src/optimizer
  src/runtime
  src/serve
  src/sqlgen
  src/storage
  src/tondir
  src/workloads
  tools
  bench
)

sources=()
for dir in "${lint_dirs[@]}"; do
  if [ ! -d "$dir" ]; then
    echo "tidy.sh: lint dir $dir does not exist (update lint_dirs)" >&2
    exit 1
  fi
  mapfile -t found < <(find "$dir" -name '*.cc' | sort)
  if [ "${#found[@]}" -eq 0 ]; then
    echo "tidy.sh: lint dir $dir has no .cc files (update lint_dirs)" >&2
    exit 1
  fi
  sources+=("${found[@]}")
done

# No translation unit may live outside the asserted list.
stray=$(find src tools bench -name '*.cc' |
    grep -vF -f <(printf '%s/\n' "${lint_dirs[@]}") || true)
if [ -n "$stray" ]; then
  echo "tidy.sh: sources outside lint_dirs (add their dir):" >&2
  printf '%s\n' "$stray" >&2
  exit 1
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: coverage asserted over ${#sources[@]} files in" \
       "${#lint_dirs[@]} dirs; clang-tidy not found on PATH, skipping" \
       "the lint pass (install LLVM tools to enable this gate)"
  exit 0
fi

jobs=$(nproc 2>/dev/null || echo 4)

# clang-tidy needs a compilation database; reconfigure the default preset
# with export enabled (a no-op when already configured that way).
cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

echo "tidy.sh: linting ${#sources[@]} files with $(clang-tidy --version |
    sed -n 's/.*version \([0-9.]*\).*/clang-tidy \1/p' | head -1)"

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p build -quiet -j "$jobs" "${sources[@]}"
else
  for f in "${sources[@]}"; do
    clang-tidy -p build --quiet "$@" "$f"
  done
fi

echo "tidy.sh: clean"
