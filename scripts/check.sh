#!/usr/bin/env bash
# Full local gate: Release and ASan/UBSan builds, the test suite under
# both (obs_test runs under ASan here too), tondlint over the example
# TondIR programs, and tondtrace smoke runs whose JSON output is gated by
# the built-in minimal validator (--check exits 3 on malformed JSON).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

for preset in default asan; do
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

./build/tools/tondlint examples/tondir/*.tir
./build/tools/tondlint --json examples/tondir/*.tir > /dev/null

# tondtrace smoke: every emitted JSON document must pass --check.
for bindir in build build-asan; do
  trace="$bindir/tools/tondtrace"
  "$trace" --tir --format=chrome --check examples/tondir/*.tir > /dev/null
  "$trace" --tir --format=json --check examples/tondir/*.tir > /dev/null
  "$trace" --tpch=0.002 --query=6 --format=chrome --check > /dev/null 2>&1
  "$trace" --tpch=0.002 --query=6 --format=json --check --analyze \
      > /dev/null 2>&1
done

echo "check.sh: all green"
