#!/usr/bin/env bash
# Full local gate: Release and ASan/UBSan builds, the test suite under
# both (obs_test runs under ASan here too), a full-suite rerun with the
# push-based pipeline executor disabled (TOND_PIPELINE=off), a
# ThreadSanitizer pass over the threaded suites (worker pool,
# differential, concurrency) in both execution modes, a
# standalone-UBSan pass over the analysis/optimizer/frontend-analysis
# suites (the dataflow lattice code does interval arithmetic near integer
# limits), a verified differential sweep (TOND_VERIFY_PLANS=1 across both
# execution modes plus an ASan lane, so every plan in the 30-workload
# oracle is structurally checked at every stage), clang-tidy (skipped
# with a notice when the tool is absent), tondlint over the example
# TondIR programs, tondcheck over the example Python workloads, and
# tondplan over the example SQL queries — each with per-file .expect
# sidecars pinning the diagnostic codes — tondplan corruption goldens
# pinning which P-codes catch each seeded defect class, a bench_compile
# smoke over all 30 workloads gating verifier overhead < 2%,
# tondtrace/tondstat smoke runs whose JSON output is gated by the built-in
# minimal validator (--check exits 3 on malformed JSON), CLI argument
# validation, a serve-path smoke (one PREPARE + three EXECUTEs must cost
# exactly one compile, verified through the tond_serve_* counters),
# schema checks over the committed BENCH_exec.json and BENCH_serve.json
# baselines (including the Q16 distinct-count speedup floor and the
# >= 90% prepared hit-rate floor), and the metrics overhead guard
# (always-on recording must cost < 2% vs TOND_METRICS-off on the TPC-H
# suite).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

for preset in default asan; do
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

# Pipeline-off regression lane: the materializing executor must stay a
# fully supported fallback (it is the differential oracle's off-side and
# the escape hatch if a pipeline bug ships), so the whole Release suite
# reruns with push-based execution disabled.
TOND_PIPELINE=off ctest --preset default -j "$jobs"

# Verified differential sweep: the full 30-workload differential oracle
# (threads {1,2,4}) reruns with the physical plan verifier forced on in
# the Release build, in both execution modes — every plan the sweep
# touches is structurally checked after bind, after each rewriting
# optimizer pass, and after pipeline build. One sanitizer lane repeats
# the sweep under ASan (that build verifies by default, but the explicit
# env makes the lane's intent unambiguous).
for pipeline in on off; do
  TOND_VERIFY_PLANS=1 TOND_PIPELINE="$pipeline" \
      ./build/tests/differential_test --gtest_brief=1
done
TOND_VERIFY_PLANS=1 ./build-asan/tests/differential_test --gtest_brief=1

# TSan pass: build just the suites that exercise the shared worker pool,
# the plan cache, and concurrent sessions, and run them directly (a full
# suite under TSan is prohibitively slow; these suites cover every
# threaded code path). serve_test is here because its racing-connection
# and tiny-queue storms exercise the admission condvar protocol and the
# shared skeleton cache under contention. Each suite runs under both
# execution strategies: the push-based pipelines hand thread-local sink
# slots to pool workers and the materializing executor shares the same
# pool, and both must be race-free.
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" \
    --target engine_test differential_test concurrency_test metrics_test \
    serve_test
for t in engine_test differential_test concurrency_test metrics_test \
    serve_test; do
  for pipeline in on off; do
    TOND_PIPELINE="$pipeline" TSAN_OPTIONS="halt_on_error=1" \
        "./build-tsan/tests/$t" --gtest_brief=1
  done
done

# Standalone-UBSan pass: the dataflow engine's interval lattice does
# saturating arithmetic near int64 limits, the optimizer folds constants,
# and the frontend analyzer's abstract interpreter walks attacker-shaped
# ASTs (see the mutation tests); run all three suites with every UB
# report promoted to a failure.
cmake --preset ubsan
cmake --build --preset ubsan -j "$jobs" \
    --target analysis_test optimizer_test frontend_analysis_test
for t in analysis_test optimizer_test frontend_analysis_test; do
  "./build-ubsan/tests/$t" --gtest_brief=1
done

./scripts/tidy.sh

# tondlint over every example program, checked against its .expect
# sidecar: "OK" means no diagnostics, otherwise one T-code per line
# (sorted). Error-severity codes must also fail the lint exit code.
for tir in examples/tondir/*.tir; do
  expect="$tir.expect"
  if [ ! -f "$expect" ]; then
    echo "check.sh: missing sidecar $expect" >&2
    exit 1
  fi
  status=0
  out=$(./build/tools/tondlint --json "$tir") || status=$?
  got=$(printf '%s' "$out" |
      jq -r '.files[].diagnostics[].code' | sort -u)
  [ -n "$got" ] || got="OK"
  if ! diff -u <(sort -u "$expect") <(printf '%s\n' "$got"); then
    echo "check.sh: tondlint codes for $tir do not match $expect" >&2
    exit 1
  fi
  has_error=$(printf '%s' "$out" |
      jq '[.files[].diagnostics[] | select(.severity == "error")] | length')
  if [ "$has_error" -gt 0 ] && [ "$status" -eq 0 ]; then
    echo "check.sh: $tir has errors but tondlint exited 0" >&2
    exit 1
  fi
  if [ "$has_error" -eq 0 ] && [ "$status" -ne 0 ]; then
    echo "check.sh: tondlint failed on $tir (exit $status)" >&2
    exit 1
  fi
done

# Golden JSON checks: one error program and one warning program must keep
# their exact machine-readable shape (code, severity, non-empty inference
# chain in `notes`) so downstream tooling can rely on it.
(./build/tools/tondlint --json examples/tondir/bad_type_mismatch.tir ||
  true) |
  jq -e '.files[0].diagnostics[0] |
         .code == "T020" and .severity == "error" and
         (.notes | length > 0)' > /dev/null ||
  { echo "check.sh: golden JSON check failed for bad_type_mismatch" >&2
    exit 1; }
./build/tools/tondlint --json examples/tondir/warn_redundant.tir |
  jq -e '.exit_code == 0 and
         ([.files[0].diagnostics[] | select(.notes | length == 0)]
          | length == 0) and
         ([.files[0].diagnostics[].code] | sort
          == ["T021", "T024", "T025", "T032"])' > /dev/null ||
  { echo "check.sh: golden JSON check failed for warn_redundant" >&2
    exit 1; }

# tondcheck over every example Python workload, checked against its
# .expect sidecar: "OK" means no findings, otherwise one F-code per line
# (sorted). Error-severity codes must also fail the check exit code.
for py in examples/python/*.py; do
  expect="$py.expect"
  if [ ! -f "$expect" ]; then
    echo "check.sh: missing sidecar $expect" >&2
    exit 1
  fi
  status=0
  out=$(./build/tools/tondcheck --json "$py") || status=$?
  got=$(printf '%s' "$out" |
      jq -r '.files[].functions[].diagnostics[].code' | sort -u)
  [ -n "$got" ] || got="OK"
  if ! diff -u <(sort -u "$expect") <(printf '%s\n' "$got"); then
    echo "check.sh: tondcheck codes for $py do not match $expect" >&2
    exit 1
  fi
  has_error=$(printf '%s' "$out" |
      jq '[.files[].functions[].diagnostics[] |
           select(.severity == "error")] | length')
  if [ "$has_error" -gt 0 ] && [ "$status" -eq 0 ]; then
    echo "check.sh: $py has errors but tondcheck exited 0" >&2
    exit 1
  fi
  if [ "$has_error" -eq 0 ] && [ "$status" -ne 0 ]; then
    echo "check.sh: tondcheck failed on $py (exit $status)" >&2
    exit 1
  fi
done

# Golden JSON check for the frontend tier: a located F-error must keep
# its machine-readable shape (code, severity, source line, non-empty
# why-chain in `notes`).
(./build/tools/tondcheck --json examples/python/bad_unknown_column.py ||
  true) |
  jq -e '.files[0].functions[0].diagnostics[0] |
         .code == "F001" and .severity == "error" and
         .line >= 1 and (.notes | length > 0)' > /dev/null ||
  { echo "check.sh: golden JSON check failed for bad_unknown_column" >&2
    exit 1; }

# tondplan over every example SQL query, checked against its .expect
# sidecar: "OK" means every stage verified clean, otherwise one P-code
# per line (sorted). Error-severity codes must also fail the exit code.
for sql in examples/sql/*.sql; do
  expect="$sql.expect"
  if [ ! -f "$expect" ]; then
    echo "check.sh: missing sidecar $expect" >&2
    exit 1
  fi
  status=0
  out=$(./build/tools/tondplan --json "$sql") || status=$?
  got=$(printf '%s' "$out" |
      jq -r '.files[].stages[].diagnostics[].code' | sort -u)
  [ -n "$got" ] || got="OK"
  if ! diff -u <(sort -u "$expect") <(printf '%s\n' "$got"); then
    echo "check.sh: tondplan codes for $sql do not match $expect" >&2
    exit 1
  fi
  has_error=$(printf '%s' "$out" |
      jq '[.files[].stages[].diagnostics[] |
           select(.severity == "error")] | length')
  if [ "$has_error" -gt 0 ] && [ "$status" -eq 0 ]; then
    echo "check.sh: $sql has errors but tondplan exited 0" >&2
    exit 1
  fi
  if [ "$has_error" -eq 0 ] && [ "$status" -ne 0 ]; then
    echo "check.sh: tondplan failed on $sql (exit $status)" >&2
    exit 1
  fi
done

# Corruption goldens: each seeded --corrupt kind applied to a clean plan
# must be caught by exactly the codes the verifier owns for that defect
# class (schema/type drift -> P004, broken dep DAG -> P021 + the P028
# undeclared read it induces, sink flip -> P026, dead liveness mask ->
# P030), and each must fail the exit code. This pins the detection
# surface end-to-end: a refactor that silently stops catching a class
# fails here, not in production.
for golden in "schema P004" "type P004" "dag P021,P028" "sink P026" \
    "mask P030"; do
  kind=${golden%% *}
  want=${golden#* }
  got=$({ ./build/tools/tondplan --json --corrupt="$kind:1" \
            examples/sql/scan_filter_agg.sql || true; } |
        jq -r '[.files[].stages[].diagnostics[].code] | unique |
               join(",")')
  if [ "$got" != "$want" ]; then
    echo "check.sh: tondplan --corrupt=$kind caught [$got], want [$want]" \
        >&2
    exit 1
  fi
  if ./build/tools/tondplan --corrupt="$kind:1" \
      examples/sql/scan_filter_agg.sql > /dev/null 2>&1; then
    echo "check.sh: tondplan --corrupt=$kind exited 0 on a corruption" >&2
    exit 1
  fi
done

# tondplan argument validation: bad corrupt kinds, unknown flags, and a
# missing input must print usage and exit 2.
for bad in "--corrupt=bogus" "--bogus" ""; do
  status=0
  # shellcheck disable=SC2086  # empty arg is the intentional no-input case
  ./build/tools/tondplan $bad > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "check.sh: tondplan '$bad' exited $status, want 2" >&2
    exit 1
  fi
done

# bench_compile smoke: the compile-latency bench must cover all 30
# workloads and emit valid JSON with a measured analyze phase and a
# verifier share under the 2% overhead budget (DESIGN.md §15).
./build/tools/bench_compile --reps 1 |
  jq -e '.ok == true and (.workloads | length == 30) and
         .suite_analyze_ms >= 0 and
         .suite_verify_ms > 0 and .verify_share < 0.02' > /dev/null ||
  { echo "check.sh: bench_compile smoke failed" >&2
    exit 1; }

# tondtrace smoke: every emitted JSON document must pass --check.
for bindir in build build-asan; do
  trace="$bindir/tools/tondtrace"
  "$trace" --tir --format=chrome --check examples/tondir/*.tir > /dev/null
  "$trace" --tir --format=json --check examples/tondir/*.tir > /dev/null
  "$trace" --tpch=0.002 --query=6 --format=chrome --check > /dev/null 2>&1
  "$trace" --tpch=0.002 --query=6 --format=json --check --analyze \
      > /dev/null 2>&1
done

# tondtrace concurrent-jobs smoke: 4 racing sessions over the shared pool
# must all succeed and emit valid JSON.
./build/tools/tondtrace --tpch=0.002 --query=6 --jobs=4 --threads=2 \
    --format=json --check > /dev/null 2>&1

# Argument validation: bad flag values must print usage and exit 2, never
# run with a nonsense configuration.
for bad in "--jobs=0" "--jobs=-3" "--threads=0" "--olevel=9" "--bogus"; do
  if ./build/tools/tondtrace --tpch=0.002 --query=6 "$bad" \
      > /dev/null 2>&1; then
    echo "check.sh: tondtrace accepted $bad" >&2
    exit 1
  fi
  status=0
  ./build/tools/tondtrace --tpch=0.002 --query=6 "$bad" \
      > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "check.sh: tondtrace $bad exited $status, want 2" >&2
    exit 1
  fi
done
for bad in "--jobs=0" "--reps=-1" "--watch=-2" "--format=xml" "--serve=0" \
    "--serve=-2" "--bogus"; do
  status=0
  ./build/tools/tondstat "$bad" > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "check.sh: tondstat $bad exited $status, want 2" >&2
    exit 1
  fi
done
# Flag-combination validation: the serve dashboard needs serve traffic to
# render, and serve load owns its own client threads (no --jobs mixing).
for combo in "--format=serve" "--serve=2 --jobs=2"; do
  status=0
  # shellcheck disable=SC2086  # combo is intentionally word-split
  ./build/tools/tondstat $combo > /dev/null 2>&1 || status=$?
  if [ "$status" -ne 2 ]; then
    echo "check.sh: tondstat $combo exited $status, want 2" >&2
    exit 1
  fi
done

# tondstat smoke: the metrics exposition must validate as JSON (--check
# exits 3 on malformed), carry the query counters it just generated, and
# render a Prometheus page with typed families. Delta windows (--watch)
# must stay valid JSON too.
./build/tools/tondstat --tpch=0.002 --query=6 --reps=2 --check |
  jq -e '.counters.tond_db_queries_total == 2 and
         .histograms.tond_db_query_latency_ns.count == 2 and
         .gauges.tond_mem_db_peak_bytes > 0 and
         .gauges.tond_mem_db_current_bytes == 0' > /dev/null ||
  { echo "check.sh: tondstat JSON smoke failed" >&2
    exit 1; }
./build/tools/tondstat --tpch=0.002 --query=6 --format=prom |
  grep -q '^# TYPE tond_db_query_latency_ns histogram' ||
  { echo "check.sh: tondstat prom smoke failed" >&2
    exit 1; }
./build/tools/tondstat --tpch=0.002 --query=6 --watch=2 --check |
  tail -1 |
  jq -e '.counters.tond_db_queries_total == 1' > /dev/null ||
  { echo "check.sh: tondstat --watch delta smoke failed" >&2
    exit 1; }
# The TOND_METRICS kill switch zeroes recording but keeps exposition up.
TOND_METRICS=off ./build/tools/tondstat --tpch=0.002 --query=6 --check |
  jq -e '.counters.tond_db_queries_total == 0' > /dev/null ||
  { echo "check.sh: TOND_METRICS=off still recorded metrics" >&2
    exit 1; }

# Serve smoke: one connection running the same query 3 times through the
# PREPARE/EXECUTE path must compile exactly once — the first rep misses
# the skeleton cache (one real compile), the next two are prepared hits
# with zero compiles — all read back from the always-on tond_serve_* /
# tond_cache_plan_* counters rather than tool-private bookkeeping.
./build/tools/tondstat --tpch=0.002 --query=6 --serve=1 --reps=3 --check |
  jq -e '.counters.tond_serve_prepared_misses_total == 1 and
         .counters.tond_serve_prepared_hits_total == 2 and
         .counters.tond_cache_plan_misses_total == 1 and
         .counters.tond_serve_queries_total == 3 and
         .counters.tond_serve_rejected_queue_full_total == 0 and
         .gauges.tond_serve_inflight == 0' > /dev/null ||
  { echo "check.sh: tondstat serve smoke failed" >&2
    exit 1; }
# The serve dashboard renderer must produce its sections on live data.
./build/tools/tondstat --tpch=0.002 --query=6 --serve=2 --reps=2 \
    --format=serve |
  grep -q 'prepared: hits=' ||
  { echo "check.sh: tondstat --format=serve smoke failed" >&2
    exit 1; }

# BENCH_compile.json schema sanity: the committed compile baseline must
# cover all 30 workloads with per-workload verify_ms and keep the
# suite-level verifier share under the 2% budget the always-on verifier
# is allowed to cost.
jq -e '.bench == "compile" and .ok == true and
       (.workloads | length == 30) and
       ([.workloads[] | has("verify_ms")] | all) and
       ([.workloads[].verify_ms] | min >= 0) and
       .suite_verify_ms > 0 and .verify_share < 0.02' \
    BENCH_compile.json > /dev/null ||
  { echo "check.sh: BENCH_compile.json schema check failed" >&2
    exit 1; }

# BENCH_exec.json schema sanity: the committed runtime baseline must
# cover all 30 workloads at threads {1,2,4} with positive medians and
# accounted memory on every entry, and every entry must carry the
# pipelined-vs-materialized A/B pair (materialized_median_ms and the
# derived speedup) — a baseline regenerated without the A/B comparison
# is stale with respect to the push-based executor.
jq -e '.bench == "exec" and .ok == true and
       (.threads == [1, 2, 4]) and (.workloads | length == 30) and
       ([.workloads[].threads | keys | sort] | unique == [["1","2","4"]])
       and ([.workloads[].threads[][ "median_ms"]] | min > 0)
       and ([.workloads[].threads[][ "peak_mem_bytes"]] | min > 0)
       and ([.workloads[].threads[][ "materialized_median_ms"]] | min > 0)
       and ([.workloads[].threads[][ "speedup"]] | min > 0)' \
    BENCH_exec.json > /dev/null ||
  { echo "check.sh: BENCH_exec.json schema check failed" >&2
    exit 1; }

# Q16 distinct-count floor: the set-backed COUNT(DISTINCT ...) aggregate
# must keep the pipelined side at least at parity with the materializing
# executor on the one workload dominated by distinct-count work (observed
# 1.19-1.33x across thread counts; parity is the regression floor, the
# margin absorbs timer noise in the committed baseline).
jq -e '[.workloads[] | select(.name == "Q16") | .threads[].speedup]
       | length == 3 and min >= 1.0' BENCH_exec.json > /dev/null ||
  { echo "check.sh: BENCH_exec.json Q16 distinct-count floor failed" >&2
    exit 1; }

# BENCH_serve.json schema sanity: the committed serve baseline must come
# from a real concurrent storm (>= 4 clients over the full 30-workload
# mix) and show the auto-parameterized skeleton cache absorbing per-client
# literal variation: >= 90% prepared hit rate, i.e. roughly one compile
# per workload shape across all clients x reps.
jq -e '.bench == "serve" and .clients >= 4 and .workloads == 30 and
       .total_queries >= 120 and .qps > 0 and
       .p50_ms > 0 and .p95_ms >= .p50_ms and .p99_ms >= .p95_ms and
       .hit_rate >= 0.9 and
       .admitted == .total_queries and
       .prepared_hits + .prepared_misses == .total_queries' \
    BENCH_serve.json > /dev/null ||
  { echo "check.sh: BENCH_serve.json schema check failed" >&2
    exit 1; }

# Overhead guard: the always-on metrics path must cost < 2% on the TPC-H
# suite vs the same build with recording disabled.
./build/tools/bench_exec --overhead-guard --threshold 2 |
  jq -e '.ok == true' > /dev/null ||
  { echo "check.sh: metrics overhead guard failed (>= 2%)" >&2
    exit 1; }

echo "check.sh: all green"
