#!/usr/bin/env bash
# Full local gate: Release and ASan/UBSan builds, the test suite under
# both (obs_test runs under ASan here too), a ThreadSanitizer pass over
# the threaded suites (worker pool, differential, concurrency), tondlint
# over the example TondIR programs, and tondtrace smoke runs whose JSON
# output is gated by the built-in minimal validator (--check exits 3 on
# malformed JSON).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

for preset in default asan; do
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

# TSan pass: build just the suites that exercise the shared worker pool,
# the plan cache, and concurrent sessions, and run them directly (a full
# suite under TSan is prohibitively slow; these three cover every
# threaded code path).
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" \
    --target engine_test differential_test concurrency_test
for t in engine_test differential_test concurrency_test; do
  TSAN_OPTIONS="halt_on_error=1" "./build-tsan/tests/$t" \
      --gtest_brief=1
done

./build/tools/tondlint examples/tondir/*.tir
./build/tools/tondlint --json examples/tondir/*.tir > /dev/null

# tondtrace smoke: every emitted JSON document must pass --check.
for bindir in build build-asan; do
  trace="$bindir/tools/tondtrace"
  "$trace" --tir --format=chrome --check examples/tondir/*.tir > /dev/null
  "$trace" --tir --format=json --check examples/tondir/*.tir > /dev/null
  "$trace" --tpch=0.002 --query=6 --format=chrome --check > /dev/null 2>&1
  "$trace" --tpch=0.002 --query=6 --format=json --check --analyze \
      > /dev/null 2>&1
done

# tondtrace concurrent-jobs smoke: 4 racing sessions over the shared pool
# must all succeed and emit valid JSON.
./build/tools/tondtrace --tpch=0.002 --query=6 --jobs=4 --threads=2 \
    --format=json --check > /dev/null 2>&1

echo "check.sh: all green"
