#!/usr/bin/env bash
# Full local gate: Release and ASan/UBSan builds, the test suite under
# both, and tondlint over the example TondIR programs.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

for preset in default asan; do
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done

./build/tools/tondlint examples/tondir/*.tir
echo "check.sh: all green"
