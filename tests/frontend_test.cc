#include <gtest/gtest.h>

#include <random>

#include "engine/database.h"
#include "frontend/anf/anf.h"
#include "frontend/compiler.h"
#include "frontend/pylang/parser.h"
#include "frontend/translate/einsum.h"

namespace pytond::frontend {
namespace {

// ----------------------------------------------------------- pylang

TEST(PyParserTest, ParsesDecoratedFunction) {
  auto m = py::ParseModule(R"(
import pandas as pd

@pytond()
def q(df):
    v = df[df.a > 5]
    return v
)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->functions.size(), 1u);
  EXPECT_EQ(m->functions[0].name, "q");
  EXPECT_EQ(m->functions[0].params, std::vector<std::string>{"df"});
  EXPECT_EQ(m->functions[0].body.size(), 2u);
}

TEST(PyParserTest, SkipsUndecoratedFunctions) {
  auto m = py::ParseModule(R"(
def helper(x):
    y = x
    return y

@pytond()
def q(df):
    return df
)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->functions.size(), 1u);
}

TEST(PyParserTest, DecoratorKwargs) {
  auto m = py::ParseModule(R"(
@pytond(layout='sparse', pivot_values=['a', 'b'])
def q(df):
    return df
)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->functions[0].decorator_kwargs.size(), 2u);
  EXPECT_EQ(m->functions[0].decorator_kwargs[0].first, "layout");
}

TEST(PyParserTest, ExpressionPrecedence) {
  auto e = py::ParseExpression("(df.a > 5) & (df.b < 3)");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->ToString(), "((df.a > 5) & (df.b < 3))");
  auto e2 = py::ParseExpression("a + b * c");
  EXPECT_EQ((*e2)->ToString(), "(a + (b * c))");
}

TEST(PyParserTest, CallsKwargsAndChains) {
  auto e = py::ParseExpression(
      "df.merge(d2, left_on='a', right_on='x').head(5)");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->ToString(),
            "df.merge(d2, left_on='a', right_on='x').head(5)");
}

TEST(PyParserTest, MultilineCallInsideParens) {
  auto m = py::ParseModule(
      "@pytond()\n"
      "def q(df):\n"
      "    v = df.merge(df,\n"
      "                 on='a')\n"
      "    return v\n");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->functions[0].body.size(), 2u);
}

TEST(PyParserTest, ListsAndStrings) {
  auto e = py::ParseExpression("df[['a', 'b']]");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "df[['a', 'b']]");
}

// ----------------------------------------------------------- ANF

TEST(AnfTest, PaperExampleHoistsNestedOps) {
  // Paper §III-B example.
  auto m = py::ParseModule(R"(
@pytond()
def q(df1, df2):
    res = (df1[df1.b > 10]['a']).merge((df2[df2.y == 'r']['x']), left_on='a', right_on='x')
    return res
)");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto anf = ToAnf(m->functions[0].body);
  ASSERT_TRUE(anf.ok());
  // 6 hoisted temps + assignment + return.
  ASSERT_EQ(anf->size(), 8u);
  EXPECT_EQ(anf->at(0).target->name, "_v1");
  EXPECT_EQ(anf->at(0).value->ToString(), "(df1.b > 10)");
  EXPECT_EQ(anf->at(1).value->ToString(), "df1[_v1]");
  EXPECT_EQ(anf->at(2).value->ToString(), "_v2['a']");
  // Final statement is the merge over temps.
  EXPECT_EQ(anf->at(6).value->children[0]->children[0]->name, "_v3");
}

TEST(AnfTest, LeavesFlatStatementsAlone) {
  auto m = py::ParseModule(R"(
@pytond()
def q(df):
    v = df[df.a > 1]
    return v
)");
  auto anf = ToAnf(m->functions[0].body);
  ASSERT_TRUE(anf.ok());
  EXPECT_EQ(anf->size(), 3u);  // mask temp + filter + return
}

// ----------------------------------------------------------- einsum

TEST(EinsumSpecTest, ParseAndNormalize) {
  auto s = ParseEinsumSpec("ab,cc->ba");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(NormalizeSpec(*s).ToString(), "ij,kk->ji");
  EXPECT_FALSE(ParseEinsumSpec("abc").ok());   // no arrow
  EXPECT_FALSE(ParseEinsumSpec("ij->k").ok()); // unknown output index
  EXPECT_FALSE(ParseEinsumSpec("ijk->i").ok()); // order 3
}

TEST(EinsumPlanTest, PaperWorkedExample) {
  // §III-D: 'ab,cc->ba' reduces via diag -> vector sum -> swap ->
  // transpose to the scalar-times-matrix kernel ES6.
  auto plan = PlanEinsum(*ParseEinsumSpec("ab,cc->ba"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<std::string> kernels;
  for (const auto& step : *plan) kernels.push_back(step.kernel);
  ASSERT_GE(kernels.size(), 4u);
  EXPECT_EQ(kernels[0], "diag");
  EXPECT_EQ(kernels[1], "vecsum");
  EXPECT_EQ(kernels[2], "swap");
  EXPECT_EQ(kernels[3], "transpose");
  EXPECT_EQ(kernels.back(), "ES6");
}

TEST(EinsumPlanTest, DirectKernelsNeedNoReduction) {
  for (const char* spec : {"ij,ik->jk", "ij,ij->ij", "i->", "ii->i"}) {
    auto plan = PlanEinsum(*ParseEinsumSpec(spec));
    ASSERT_TRUE(plan.ok()) << spec;
    EXPECT_EQ(plan->size(), 1u) << spec;
  }
}

TEST(EinsumPlanTest, ReducesPrivateIndices) {
  // 'ij,k->i': j summed out of operand 0, k summed out of operand 1.
  auto plan = PlanEinsum(*ParseEinsumSpec("ij,k->i"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool saw_rowsum = false, saw_vecsum = false;
  for (const auto& s : *plan) {
    if (s.kernel == "rowsum") saw_rowsum = true;
    if (s.kernel == "vecsum") saw_vecsum = true;
  }
  EXPECT_TRUE(saw_rowsum);
  EXPECT_TRUE(saw_vecsum);
}

// --------------------------------------------- end-to-end pipeline

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      Table t;
      ASSERT_TRUE(t.AddColumn("k", Column::Int64({1, 2, 3, 4, 5})).ok());
      ASSERT_TRUE(t.AddColumn("cat",
                              Column::String({"a", "b", "a", "b", "c"}))
                      .ok());
      ASSERT_TRUE(
          t.AddColumn("v", Column::Float64({10, 20, 30, 40, 50})).ok());
      TableConstraints tc;
      tc.primary_key = {"k"};
      ASSERT_TRUE(db_.CreateTable("t", std::move(t), tc).ok());
    }
    {
      Table u;
      ASSERT_TRUE(u.AddColumn("k", Column::Int64({1, 2, 2, 9})).ok());
      ASSERT_TRUE(u.AddColumn("w", Column::Float64({5, 6, 7, 8})).ok());
      ASSERT_TRUE(db_.CreateTable("u", std::move(u)).ok());
    }
    {
      // Dense matrix: id + 2 data columns.
      Table m;
      ASSERT_TRUE(m.AddColumn("id", Column::Int64({0, 1, 2})).ok());
      ASSERT_TRUE(m.AddColumn("c0", Column::Float64({1, 2, 3})).ok());
      ASSERT_TRUE(m.AddColumn("c1", Column::Float64({4, 5, 6})).ok());
      TableConstraints tc;
      tc.primary_key = {"id"};
      ASSERT_TRUE(db_.CreateTable("m", std::move(m), tc).ok());
    }
  }

  Table Run(const std::string& source, int level = 4) {
    CompileOptions opts;
    opts.optimization_level = level;
    auto c = CompileFunction(source, db_.catalog(), opts);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    if (!c.ok()) return Table();
    auto r = db_.Query(c->sql);
    EXPECT_TRUE(r.ok()) << c->sql << "\n"
                        << (r.ok() ? "" : r.status().ToString());
    return r.ok() ? **r : Table();
  }

  engine::Database db_;
};

TEST_F(PipelineTest, FilterAndProject) {
  Table r = Run(R"(
@pytond()
def q(t):
    v = t[t.v > 20]
    out = v[['k', 'v']]
    return out
)");
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.num_columns(), 2u);
}

TEST_F(PipelineTest, MaskConjunctionAndStringPredicates) {
  Table r = Run(R"(
@pytond()
def q(t):
    v = t[(t.v >= 20) & (t.cat == 'b')]
    return v
)");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(PipelineTest, ComputedColumn) {
  Table r = Run(R"(
@pytond()
def q(t):
    t['double_v'] = t.v * 2
    return t
)");
  ASSERT_EQ(r.num_columns(), 4u);
  EXPECT_EQ(r.column(3).Get(0), Value::Float64(20.0));
}

TEST_F(PipelineTest, MergeInner) {
  Table r = Run(R"(
@pytond()
def q(t, u):
    v = t.merge(u, on='k')
    return v
)");
  EXPECT_EQ(r.num_rows(), 3u);       // k=1 once, k=2 twice
  EXPECT_EQ(r.num_columns(), 4u);    // k, cat, v, w (shared key once)
}

TEST_F(PipelineTest, MergeImplicitRenaming) {
  // Overlapping non-key column 'v' gets suffixed _x/_y (paper §III-C).
  Table r = Run(R"(
@pytond()
def q(t):
    v = t.merge(t, on='k')
    return v
)");
  EXPECT_EQ(r.num_rows(), 5u);
  int x = 0, y = 0;
  for (const auto& name : r.schema().names) {
    if (name == "v_x" || name == "cat_x") ++x;
    if (name == "v_y" || name == "cat_y") ++y;
  }
  EXPECT_EQ(x, 2);
  EXPECT_EQ(y, 2);
}

TEST_F(PipelineTest, MergeLeftOuter) {
  Table r = Run(R"(
@pytond()
def q(t, u):
    v = t.merge(u, on='k', how='left')
    return v
)");
  EXPECT_EQ(r.num_rows(), 6u);  // 3 matches + 3 unmatched left rows
}

TEST_F(PipelineTest, GroupByNamedAgg) {
  Table r = Run(R"(
@pytond()
def q(t):
    g = t.groupby(['cat']).agg(total=('v', 'sum'), n=('k', 'count'))
    out = g.sort_values(by=['cat'])
    return out
)");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.column(0).Get(0), Value::String("a"));
  EXPECT_EQ(r.column(1).Get(0), Value::Float64(40.0));
  EXPECT_EQ(r.column(2).Get(0), Value::Int64(2));
}

TEST_F(PipelineTest, SortHeadTopN) {
  Table r = Run(R"(
@pytond()
def q(t):
    v = t.sort_values(by=['v'], ascending=[False]).head(2)
    return v
)");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.column(0).Get(0), Value::Int64(5));
}

TEST_F(PipelineTest, UniqueValues) {
  Table r = Run(R"(
@pytond()
def q(t):
    v = t.cat.unique()
    return v
)");
  EXPECT_EQ(r.num_rows(), 3u);
}

TEST_F(PipelineTest, IsinSemiJoin) {
  Table r = Run(R"(
@pytond()
def q(t, u):
    v = t[t.k.isin(u['k'])]
    return v
)");
  EXPECT_EQ(r.num_rows(), 2u);  // k = 1, 2
}

TEST_F(PipelineTest, NegatedIsinAntiJoin) {
  Table r = Run(R"(
@pytond()
def q(t, u):
    v = t[~t.k.isin(u['k'])]
    return v
)");
  EXPECT_EQ(r.num_rows(), 3u);  // k = 3, 4, 5
}

TEST_F(PipelineTest, IsinLiteralList) {
  Table r = Run(R"(
@pytond()
def q(t):
    v = t[t.cat.isin(['a', 'c'])]
    return v
)");
  EXPECT_EQ(r.num_rows(), 3u);
}

TEST_F(PipelineTest, StrPredicates) {
  Table names = Table();
  ASSERT_TRUE(names
                  .AddColumn("s", Column::String({"PROMO X", "ECO Y",
                                                  "PROMO BRASS"}))
                  .ok());
  ASSERT_TRUE(db_.CreateTable("names", std::move(names)).ok());
  Table r = Run(R"(
@pytond()
def q(names):
    v = names[names.s.str.startswith('PROMO')]
    return v
)");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(PipelineTest, PivotTable) {
  Table r = Run(R"(
@pytond(pivot_values=['a', 'b', 'c'])
def q(t):
    v = t.pivot_table(index='k', columns='cat', values='v', aggfunc='sum')
    return v
)");
  ASSERT_EQ(r.num_rows(), 5u);
  ASSERT_EQ(r.num_columns(), 4u);  // k + three pivot value columns
}

TEST_F(PipelineTest, ImplicitJoinViaColumnAppend) {
  // Paper §III-C implicit joins example.
  Table r = Run(R"(
@pytond()
def q(t, u):
    d = pd.DataFrame()
    d['a'] = t['v']
    d['b'] = u['w']
    return d
)");
  // Row-aligned zip of the two columns: min(5, 4) with inner join on uid
  // = 4 rows.
  EXPECT_EQ(r.num_rows(), 4u);
}

TEST_F(PipelineTest, EinsumCovarianceDense) {
  // Figure 2: covariance matrix via 'ij,ik->jk'.
  Table r = Run(R"(
@pytond()
def q(m):
    a = m.to_numpy()
    b = np.einsum('ij,ik->jk', a, a)
    return b
)");
  // m columns: [1,2,3] and [4,5,6]; gram = [[14,32],[32,77]].
  ASSERT_EQ(r.num_rows(), 2u);
  ASSERT_EQ(r.num_columns(), 3u);  // id, c0, c1
  EXPECT_EQ(r.column(1).Get(0), Value::Float64(14.0));
  EXPECT_EQ(r.column(2).Get(0), Value::Float64(32.0));
  EXPECT_EQ(r.column(1).Get(1), Value::Float64(32.0));
  EXPECT_EQ(r.column(2).Get(1), Value::Float64(77.0));
}

TEST_F(PipelineTest, EinsumCovarianceUnoptimizedAgrees) {
  const char* src = R"(
@pytond()
def q(m):
    a = m.to_numpy()
    b = np.einsum('ij,ik->jk', a, a)
    return b
)";
  Table opt = Run(src, 4);
  Table unopt = Run(src, 0);
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(opt, unopt, 1e-9, &diff)) << diff;
}

TEST_F(PipelineTest, EinsumMatVec) {
  // 'ij,j->i' with vector [2, 3]^T stored as a one-column matrix table.
  Table vec;
  ASSERT_TRUE(vec.AddColumn("id", Column::Int64({0, 1})).ok());
  ASSERT_TRUE(vec.AddColumn("c0", Column::Float64({2, 3})).ok());
  TableConstraints tc;
  tc.primary_key = {"id"};
  ASSERT_TRUE(db_.CreateTable("vec", std::move(vec), tc).ok());
  Table r = Run(R"(
@pytond()
def q(m, vec):
    a = m.to_numpy()
    v = vec.to_numpy()
    out = np.einsum('ij,j->i', a, v)
    return out
)");
  // [1,4]*[2,3] = 14; [2,5] -> 19; [3,6] -> 24.
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.column(1).Get(0), Value::Float64(14.0));
  EXPECT_EQ(r.column(1).Get(2), Value::Float64(24.0));
}

TEST_F(PipelineTest, EinsumRowAndTotalSums) {
  Table r = Run(R"(
@pytond()
def q(m):
    a = m.to_numpy()
    s = np.einsum('ij->i', a)
    return s
)");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.column(1).Get(0), Value::Float64(5.0));

  Table r2 = Run(R"(
@pytond()
def q(m):
    a = m.to_numpy()
    s = np.einsum('ij->', a)
    return s
)");
  ASSERT_EQ(r2.num_rows(), 1u);
  EXPECT_EQ(r2.column(0).Get(0), Value::Float64(21.0));
}

TEST_F(PipelineTest, SparseEinsumMatmul) {
  // COO 2x2 identity-ish times itself.
  Table a;
  ASSERT_TRUE(a.AddColumn("row_id", Column::Int64({0, 0, 1})).ok());
  ASSERT_TRUE(a.AddColumn("col_id", Column::Int64({0, 1, 1})).ok());
  ASSERT_TRUE(a.AddColumn("val", Column::Float64({1, 2, 3})).ok());
  ASSERT_TRUE(db_.CreateTable("coo", std::move(a)).ok());
  Table r = Run(R"(
@pytond(layout='sparse')
def q(coo):
    out = np.einsum('ij,jk->ik', coo, coo)
    return out
)");
  // [[1,2],[0,3]]^2 = [[1,8],[0,9]]; sparse result drops the zero.
  ASSERT_EQ(r.num_rows(), 3u);
}

TEST_F(PipelineTest, HybridPandasNumpyPandas) {
  // Filter -> einsum -> back to DataFrame -> filter (Crime-Index shape).
  Table r = Run(R"(
@pytond()
def q(m):
    f = m[m.c0 > 1]
    a = f.to_numpy()
    s = np.einsum('ij->i', a)
    d = pd.DataFrame(s)
    out = d[d.c0 > 8]
    return out
)");
  // Rows with c0>1: [2,5]=7 and [3,6]=9; filter >8 keeps one.
  EXPECT_EQ(r.num_rows(), 1u);
}

TEST_F(PipelineTest, OptimizationShrinksProgram) {
  const char* src = R"(
@pytond()
def q(t, u):
    a = t[t.v > 10]
    b = a.merge(u, on='k')
    b['p'] = b.v * b.w
    g = b.groupby(['cat']).agg(s=('p', 'sum'))
    return g
)";
  CompileOptions o0;
  o0.optimization_level = 0;
  CompileOptions o4;
  o4.optimization_level = 4;
  auto c0 = CompileFunction(src, db_.catalog(), o0);
  auto c4 = CompileFunction(src, db_.catalog(), o4);
  ASSERT_TRUE(c0.ok()) << c0.status().ToString();
  ASSERT_TRUE(c4.ok()) << c4.status().ToString();
  EXPECT_GT(c0->sql.size(), c4->sql.size());
  auto r0 = db_.Query(c0->sql);
  auto r4 = db_.Query(c4->sql);
  ASSERT_TRUE(r0.ok()) << c0->sql << r0.status().ToString();
  ASSERT_TRUE(r4.ok()) << c4->sql << r4.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**r0, **r4, 1e-9, &diff)) << diff;
}

TEST_F(PipelineTest, DialectsProduceSameResults) {
  const char* src = R"(
@pytond()
def q(t):
    v = t[t.v > 15]
    return v
)";
  CompileOptions duck;
  duck.dialect = sqlgen::SqlDialect::kDuck;
  CompileOptions hyper;
  hyper.dialect = sqlgen::SqlDialect::kHyper;
  auto cd = CompileFunction(src, db_.catalog(), duck);
  auto ch = CompileFunction(src, db_.catalog(), hyper);
  ASSERT_TRUE(cd.ok() && ch.ok());
  auto rd = db_.Query(cd->sql);
  auto rh = db_.Query(ch->sql);
  ASSERT_TRUE(rd.ok() && rh.ok());
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**rd, **rh, 1e-9, &diff)) << diff;
}

TEST_F(PipelineTest, UnknownColumnFailsCleanly) {
  auto c = CompileFunction(R"(
@pytond()
def q(t):
    v = t[t.nosuch > 1]
    return v
)",
                           db_.catalog());
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
}

TEST_F(PipelineTest, MissingTableFailsCleanly) {
  auto c = CompileFunction(R"(
@pytond()
def q(missing_table):
    return missing_table
)",
                           db_.catalog());
  ASSERT_FALSE(c.ok());
}

// ------------------------------------------- parser error paths

// Every malformed program must produce a located kParseError, never a
// crash or a silent success.
TEST(PyParserErrorTest, MalformedProgramsAreLocatedErrors) {
  const char* cases[] = {
      // Missing closing paren in the condition.
      "@pytond()\ndef q(df):\n    v = df[(df.a > 1]\n    return v\n",
      // Unterminated string literal.
      "@pytond()\ndef q(df):\n    v = df[df.s == 'oops]\n    return v\n",
      // Bad decorator.
      "@pytond(\ndef q(df):\n    return df\n",
      // Missing colon after def.
      "@pytond()\ndef q(df)\n    return df\n",
      // Operator with no right operand.
      "@pytond()\ndef q(df):\n    v = df.a >\n    return v\n",
      // Dangling attribute access.
      "@pytond()\ndef q(df):\n    v = df.\n    return v\n",
      // Unbalanced brackets in a list.
      "@pytond()\ndef q(df):\n    v = df[['a', 'b']\n    return v\n",
      // Assignment with no right-hand side.
      "@pytond()\ndef q(df):\n    v =\n    return v\n",
  };
  for (const char* src : cases) {
    auto m = py::ParseModule(src);
    ASSERT_FALSE(m.ok()) << "expected parse failure for:\n" << src;
    EXPECT_EQ(m.status().code(), StatusCode::kParseError) << src;
    EXPECT_NE(m.status().message().find("line"), std::string::npos)
        << "parse error lacks a source location: "
        << m.status().ToString();
  }
}

TEST(PyParserErrorTest, ErrorLineNumbersPointAtTheOffendingLine) {
  auto m = py::ParseModule(
      "@pytond()\n"
      "def q(df):\n"
      "    a = df[df.x > 1]\n"
      "    b = a[(a.y > 2]\n"  // line 4: unbalanced paren
      "    return b\n");
  ASSERT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("line 4"), std::string::npos)
      << m.status().ToString();
}

// Randomized mutation loop: corrupt valid programs and feed them to the
// parser. The invariant is total robustness — either a parse succeeds
// (and the result survives ANF rewriting) or it fails with a located
// kParseError; it must never crash.
TEST(PyParserErrorTest, RandomMutationsNeverCrash) {
  const std::vector<std::string> corpus = {
      "@pytond()\n"
      "def q(df):\n"
      "    v = df[df.a > 5]\n"
      "    out = v[['a', 'b']]\n"
      "    return out\n",
      "@pytond()\n"
      "def q(t, u):\n"
      "    j = t.merge(u, on='k')\n"
      "    g = j.groupby(['cat']).agg(s=('v', 'sum'))\n"
      "    out = g.sort_values(by=['s'], ascending=[False]).head(3)\n"
      "    return out\n",
      "@pytond(layout='sparse')\n"
      "def q(m, w):\n"
      "    a = m.to_numpy()\n"
      "    r = np.einsum('ij,j->i', a, w.to_numpy())\n"
      "    d = pd.DataFrame(r)\n"
      "    return d\n",
      "@pytond()\n"
      "def q(df):\n"
      "    df['z'] = df.x * 2 + 1\n"
      "    keep = df[df.s.isin(['a', 'b']) & (df.z > 0)]\n"
      "    return keep\n",
  };
  std::mt19937_64 rng(20260808);
  const char kNoise[] = "()[]'\",.:=><&|@#\n\t x0";
  int parsed_ok = 0;
  int parse_errors = 0;
  for (int iter = 0; iter < 800; ++iter) {
    std::string src = corpus[rng() % corpus.size()];
    // 1-3 random edits: delete, insert, or overwrite a byte.
    int edits = 1 + (int)(rng() % 3);
    for (int e = 0; e < edits && !src.empty(); ++e) {
      size_t pos = rng() % src.size();
      switch (rng() % 3) {
        case 0:
          src.erase(pos, 1);
          break;
        case 1:
          src.insert(pos, 1, kNoise[rng() % (sizeof(kNoise) - 1)]);
          break;
        default:
          src[pos] = kNoise[rng() % (sizeof(kNoise) - 1)];
          break;
      }
    }
    auto m = py::ParseModule(src);
    if (!m.ok()) {
      ++parse_errors;
      EXPECT_EQ(m.status().code(), StatusCode::kParseError)
          << m.status().ToString() << "\nsource:\n" << src;
      EXPECT_NE(m.status().message().find("line"), std::string::npos)
          << m.status().ToString();
      continue;
    }
    ++parsed_ok;
    // A mutated-but-parseable program must still ANF-normalize without
    // crashing (failures are fine; they must be clean Statuses).
    for (const py::Function& fn : m->functions) {
      auto anf = ToAnf(fn.body);
      (void)anf;
    }
  }
  // The mutator should exercise both outcomes.
  EXPECT_GT(parse_errors, 0);
  EXPECT_GT(parsed_ok, 0);
}

}  // namespace
}  // namespace pytond::frontend
