// Always-on metrics (DESIGN.md §12): sharded counters, log-bucketed
// histograms, the memory accountant, registry exposition, and — the
// reason this suite is wired into the TSan ctest lane — racing sessions
// hammering the same registry while snapshots are taken concurrently.

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "obs/json.h"
#include "obs/metrics/memory_accountant.h"
#include "obs/metrics/metrics.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge primitives under contention.

TEST(CounterTest, ConcurrentAddsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetMaxIsMonotoneUnderRaces) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 10000; ++i) g.SetMax(t * 10000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.Value(), (kThreads - 1) * 10000 + 9999);
}

// ---------------------------------------------------------------------------
// Histogram bucket math and quantile error bounds.

TEST(HistogramTest, QuantilesWithinLogBucketErrorBound) {
  obs::Histogram h;
  // 1..1000 uniformly: p50 ≈ 500, p99 ≈ 990, within a 2x relative bound
  // (bucket width), clamped to the exact observed min/max.
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.Mean(), 500.5);
  double p50 = s.Quantile(0.5);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  double p99 = s.Quantile(0.99);
  EXPECT_GE(p99, 495.0);
  EXPECT_LE(p99, 1000.0);
  // Quantiles never exceed the observed extremes.
  EXPECT_LE(s.Quantile(1.0), 1000.0);
  EXPECT_GE(s.Quantile(0.0), 1.0);
}

TEST(HistogramTest, ZeroAndHugeValuesLandInTerminalBuckets) {
  obs::Histogram h;
  h.Record(0);
  h.Record(UINT64_MAX);
  obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, UINT64_MAX);
  EXPECT_EQ(s.buckets[0], 1u);          // exact zeros
  EXPECT_EQ(s.buckets.back(), 1u);      // top bit-width bucket
}

TEST(HistogramTest, DeltaSinceIsExactBucketwise) {
  obs::Histogram h;
  h.Record(10);
  h.Record(100);
  obs::HistogramSnapshot before = h.Snapshot();
  h.Record(1000);
  h.Record(1000);
  obs::HistogramSnapshot delta = h.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 2000u);
  uint64_t total = 0;
  for (uint64_t b : delta.buckets) total += b;
  EXPECT_EQ(total, 2u);
}

TEST(HistogramTest, ConcurrentRecordingMatchesSerialTotals) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  // Each thread records the same value set; snapshots race with writers.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      obs::HistogramSnapshot s = h.Snapshot();
      // A racing snapshot is a valid histogram: bucket totals never
      // exceed the count observed afterwards.
      uint64_t total = 0;
      for (uint64_t b : s.buckets) total += b;
      EXPECT_LE(total, h.count() + kThreads);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  snapshotter.join();

  obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum =
      static_cast<uint64_t>(kThreads) * kPerThread * (kPerThread + 1) / 2;
  EXPECT_EQ(s.sum, expected_sum);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, static_cast<uint64_t>(kPerThread));
  uint64_t total = 0;
  for (uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
}

// ---------------------------------------------------------------------------
// Memory accountant: charge/release protocol, parent chain, peaks.

TEST(MemoryAccountantTest, ChargeReleaseAndPeak) {
  obs::MemoryAccountant a;
  a.Charge(100);
  a.Charge(50);
  EXPECT_EQ(a.current(), 150u);
  EXPECT_EQ(a.peak(), 150u);
  a.Release(120);
  EXPECT_EQ(a.current(), 30u);
  EXPECT_EQ(a.peak(), 150u);
  // Over-release clamps to zero instead of wrapping.
  a.Release(1000);
  EXPECT_EQ(a.current(), 0u);
  EXPECT_EQ(a.peak(), 150u);
}

TEST(MemoryAccountantTest, ParentChainSeesChildActivity) {
  obs::MemoryAccountant db;
  {
    obs::MemoryAccountant q1(&db);
    q1.Charge(1000);
    {
      obs::MemoryAccountant q2(&db);
      q2.Charge(500);
      EXPECT_EQ(db.current(), 1500u);  // concurrent queries overlap
      EXPECT_EQ(db.peak(), 1500u);
    }
    // q2's destructor released its leftover balance from the parent.
    EXPECT_EQ(db.current(), 1000u);
    q1.Release(1000);
  }
  EXPECT_EQ(db.current(), 0u);
  EXPECT_EQ(db.peak(), 1500u);
}

TEST(MemoryAccountantTest, ScopedChargeReleasesOnScopeExit) {
  obs::MemoryAccountant a;
  {
    obs::ScopedCharge charge(&a, 64);
    charge.Add(36);
    EXPECT_EQ(a.current(), 100u);
    EXPECT_EQ(charge.bytes(), 100u);
  }
  EXPECT_EQ(a.current(), 0u);
  EXPECT_EQ(a.peak(), 100u);
  // Null accountant: every operation is a no-op.
  obs::ScopedCharge noop(nullptr, 1 << 20);
  EXPECT_EQ(noop.bytes(), 0u);
}

TEST(MemoryAccountantTest, ConcurrentChargesBalanceToZero) {
  obs::MemoryAccountant db;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db] {
      for (int i = 0; i < 2000; ++i) {
        obs::MemoryAccountant q(&db);
        q.Charge(128);
        q.Charge(64);
        q.Release(64);
        // Leftover 128 released by the destructor.
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.current(), 0u);
  EXPECT_GE(db.peak(), 128u);
}

// ---------------------------------------------------------------------------
// Registry: lookup stability, gating, exposition formats.

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("tond_db_queries_total");
  obs::Counter& b = reg.counter("tond_db_queries_total");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(reg.Snapshot().CounterValue("tond_db_queries_total"), 3u);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry reg;
  reg.set_enabled(false);
  reg.AddCounter("c", 5);
  reg.SetGauge("g", 7);
  reg.RecordHistogram("h", 100);
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("c"), 0u);
  EXPECT_EQ(snap.GaugeValue("g"), 0);
  const obs::HistogramSnapshot* h = snap.FindHistogram("h");
  EXPECT_TRUE(h == nullptr || h->count == 0);
}

TEST(MetricsRegistryTest, EnvKillSwitchIsReadOnceAndSticky) {
  // The TOND_METRICS switch is sampled once per process: late env edits
  // must not flip already-running registries (check.sh exercises the
  // actual off-path by launching tondstat with TOND_METRICS=off).
  const bool initial = obs::MetricsEnabledByEnv();
  ::setenv("TOND_METRICS", initial ? "off" : "1", 1);
  EXPECT_EQ(obs::MetricsEnabledByEnv(), initial);
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.enabled(), initial);
  ::unsetenv("TOND_METRICS");
}

TEST(MetricsRegistryTest, JsonExpositionValidates) {
  obs::MetricsRegistry reg;
  reg.counter("tond_db_queries_total").Add(2);
  reg.gauge("tond_cache_plan_entries").Set(4);
  reg.histogram("tond_db_query_latency_ns").Record(1234567);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"tond_db_queries_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExpositionShape) {
  obs::MetricsRegistry reg;
  reg.counter("tond_db_queries_total").Add(2);
  reg.gauge("tond_sched_worker_busy_ns{worker=\"0\"}").Set(42);
  reg.histogram("tond_db_query_latency_ns").Record(100);
  std::string prom = reg.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("# TYPE tond_db_queries_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("tond_db_queries_total 2"), std::string::npos);
  // Labeled gauge keeps its label suffix and TYPEs the bare family name.
  EXPECT_NE(prom.find("# TYPE tond_sched_worker_busy_ns gauge"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("tond_sched_worker_busy_ns{worker=\"0\"} 42"),
            std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(prom.find("tond_db_query_latency_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("tond_db_query_latency_ns_sum 100"),
            std::string::npos);
  EXPECT_NE(prom.find("tond_db_query_latency_ns_count 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotMergeEqualityUnderRacingWriters) {
  obs::MetricsRegistry reg;
  obs::Counter& queries = reg.counter("tond_db_queries_total");
  obs::Histogram& latency = reg.histogram("tond_db_query_latency_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;

  obs::MetricsSnapshot baseline = reg.Snapshot();
  std::atomic<bool> stop{false};
  // Windowed deltas taken while writers hammer: each window is diffed
  // against the previous snapshot exactly like `tondstat --watch`.
  std::vector<obs::MetricsSnapshot> windows;
  std::thread watcher([&] {
    obs::MetricsSnapshot prev = baseline;
    while (!stop.load()) {
      obs::MetricsSnapshot cur = reg.Snapshot();
      windows.push_back(cur.DeltaSince(prev));
      prev = cur;
    }
    windows.push_back(reg.Snapshot().DeltaSince(prev));
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 1; i <= kPerThread; ++i) {
        queries.Add(1);
        latency.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  watcher.join();

  // Merged windows equal the cumulative delta: nothing lost or double
  // counted across snapshot boundaries.
  uint64_t merged_queries = 0;
  uint64_t merged_latency_count = 0;
  uint64_t merged_latency_sum = 0;
  for (const obs::MetricsSnapshot& w : windows) {
    merged_queries += w.CounterValue("tond_db_queries_total");
    if (const obs::HistogramSnapshot* h =
            w.FindHistogram("tond_db_query_latency_ns")) {
      merged_latency_count += h->count;
      merged_latency_sum += h->sum;
    }
  }
  const uint64_t expected = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(merged_queries, expected);
  EXPECT_EQ(merged_latency_count, expected);
  EXPECT_EQ(merged_latency_sum, static_cast<uint64_t>(kThreads) *
                                    kPerThread * (kPerThread + 1) / 2);
}

// ---------------------------------------------------------------------------
// End-to-end: racing sessions feed the database registry; snapshots agree.

TEST(MetricsE2ETest, SessionRunsLandInRegistry) {
  Session session;
  ASSERT_TRUE(workloads::tpch::Populate(&session.db(), 0.002).ok());
  const std::string q6 = workloads::tpch::GetQuery(6).source;
  obs::MemoryAccountant observer;
  RunOptions opts;
  opts.mem = &observer;
  ASSERT_TRUE(session.Run(q6, opts).ok());
  ASSERT_TRUE(session.Run(q6, opts).ok());

  obs::MetricsSnapshot snap = session.db().StatsSnapshot();
  EXPECT_EQ(snap.CounterValue("tond_db_queries_total"), 2u);
  EXPECT_EQ(snap.CounterValue("tond_session_runs_total"), 2u);
  EXPECT_EQ(snap.CounterValue("tond_cache_plan_hits_total"), 1u);
  EXPECT_EQ(snap.CounterValue("tond_cache_plan_misses_total"), 1u);
  EXPECT_EQ(snap.GaugeValue("tond_cache_plan_entries"), 1);
  const obs::HistogramSnapshot* lat =
      snap.FindHistogram("tond_db_query_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_GT(lat->Quantile(0.5), 0.0);
  // The query charged real bytes and released them all afterwards.
  EXPECT_GT(observer.peak(), 0u);
  EXPECT_GT(snap.GaugeValue("tond_mem_db_peak_bytes"), 0);
  EXPECT_EQ(snap.GaugeValue("tond_mem_db_current_bytes"), 0);
  EXPECT_EQ(session.db().memory().current(), 0u);
}

TEST(MetricsE2ETest, RacingSessionsCountEveryQueryExactly) {
  Session session;
  // Large enough that Q6's scan-filter-agg chain exceeds the pipelined
  // executor's inline-run threshold — the assertion below needs the
  // shared pool to actually run, under either execution strategy.
  ASSERT_TRUE(workloads::tpch::Populate(&session.db(), 0.02).ok());
  const std::string q6 = workloads::tpch::GetQuery(6).source;
  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      RunOptions opts;
      opts.num_threads = 2;  // exercise the shared pool too
      for (int i = 0; i < kRunsPerThread; ++i) {
        if (!session.Run(q6, opts).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  obs::MetricsSnapshot snap = session.db().StatsSnapshot();
  const uint64_t expected =
      static_cast<uint64_t>(kThreads) * kRunsPerThread;
  EXPECT_EQ(snap.CounterValue("tond_db_queries_total"), expected);
  EXPECT_EQ(snap.CounterValue("tond_session_runs_total"), expected);
  EXPECT_EQ(snap.CounterValue("tond_db_query_failures_total"), 0u);
  EXPECT_EQ(snap.CounterValue("tond_cache_plan_hits_total") +
                snap.CounterValue("tond_cache_plan_misses_total"),
            expected);
  const obs::HistogramSnapshot* lat =
      snap.FindHistogram("tond_db_query_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, expected);
  // All concurrent queries drained their charges.
  EXPECT_EQ(snap.GaugeValue("tond_mem_db_current_bytes"), 0);
  // Parallel runs synced scheduler gauges into the snapshot.
  EXPECT_GT(snap.GaugeValue("tond_sched_workers"), 0);
  EXPECT_GT(snap.GaugeValue("tond_sched_runs"), 0);
}

}  // namespace
}  // namespace pytond
