#include <gtest/gtest.h>

#include <random>

#include "common/string_util.h"
#include "engine/database.h"

namespace pytond::engine {
namespace {

/// Deterministic random table: k (int, small domain), g (string, 4
/// values), v (float), d (date range), with a few NULLs in v.
Table RandomTable(uint64_t seed, size_t rows) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> k(rows);
  std::vector<std::string> g(rows);
  std::vector<double> v(rows);
  std::vector<int32_t> d(rows);
  static const char* kGroups[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < rows; ++i) {
    k[i] = static_cast<int64_t>(rng() % 20);
    g[i] = kGroups[rng() % 4];
    v[i] = static_cast<double>(rng() % 1000) / 10.0;
    d[i] = static_cast<int32_t>(8000 + rng() % 2000);
  }
  Table t;
  EXPECT_TRUE(t.AddColumn("k", Column::Int64(std::move(k))).ok());
  EXPECT_TRUE(t.AddColumn("g", Column::String(std::move(g))).ok());
  Column vc = Column::Float64(std::move(v));
  for (size_t i = 7; i < rows; i += 13) {
    vc.validity().assign(rows, 1);
    break;
  }
  if (!vc.validity().empty()) {
    for (size_t i = 7; i < rows; i += 13) vc.validity()[i] = 0;
  }
  EXPECT_TRUE(t.AddColumn("v", std::move(vc)).ok());
  EXPECT_TRUE(t.AddColumn("d", Column::Date(std::move(d))).ok());
  return t;
}

class RandomTableTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("t", RandomTable(GetParam(), 500)).ok());
    ASSERT_TRUE(
        db_.CreateTable("u", RandomTable(GetParam() + 1000, 300)).ok());
  }

  Table Run(const std::string& sql, QueryOptions opts = {}) {
    auto r = db_.Query(sql, opts);
    EXPECT_TRUE(r.ok()) << sql << "\n"
                        << (r.ok() ? "" : r.status().ToString());
    return r.ok() ? **r : Table();
  }

  Database db_;
};

// Property: a filter partitions the table — matching + non-matching
// row counts add up (NULL predicate rows fall on the non-matching side).
TEST_P(RandomTableTest, FilterPartitions) {
  Table all = Run("SELECT COUNT(*) AS c FROM t");
  Table yes = Run("SELECT COUNT(*) AS c FROM t WHERE v > 50");
  Table no = Run("SELECT COUNT(*) AS c FROM t WHERE NOT (v > 50)");
  Table null_v = Run("SELECT COUNT(*) AS c FROM t WHERE v IS NULL");
  EXPECT_EQ(all.column(0).Get(0).AsInt64(),
            yes.column(0).Get(0).AsInt64() + no.column(0).Get(0).AsInt64() +
                null_v.column(0).Get(0).AsInt64());
}

// Property: grouped sums total the global sum.
TEST_P(RandomTableTest, GroupSumsTotal) {
  Table grouped = Run("SELECT g, SUM(v) AS s FROM t GROUP BY g");
  Table total = Run("SELECT SUM(v) AS s FROM t");
  double sum = 0;
  for (size_t i = 0; i < grouped.num_rows(); ++i) {
    if (grouped.column(1).IsValid(i)) {
      sum += grouped.column(1).Get(i).ToDouble();
    }
  }
  EXPECT_NEAR(sum, total.column(0).Get(0).ToDouble(), 1e-6);
}

// Property: COUNT(DISTINCT g) equals the row count of SELECT DISTINCT g.
TEST_P(RandomTableTest, CountDistinctConsistent) {
  Table cd = Run("SELECT COUNT(DISTINCT g) AS c FROM t");
  Table d = Run("SELECT DISTINCT g FROM t");
  EXPECT_EQ(static_cast<size_t>(cd.column(0).Get(0).AsInt64()),
            d.num_rows());
}

// Property: inner-join cardinality equals the sum over keys of
// |t_k| * |u_k| (computed via grouped counts).
TEST_P(RandomTableTest, JoinCardinality) {
  Table joined =
      Run("SELECT COUNT(*) AS c FROM t, u WHERE t.k = u.k");
  Table tc = Run("SELECT k, COUNT(*) AS c FROM t GROUP BY k");
  Table uc = Run("SELECT k, COUNT(*) AS c FROM u GROUP BY k");
  std::map<int64_t, int64_t> um;
  for (size_t i = 0; i < uc.num_rows(); ++i) {
    um[uc.column(0).Get(i).AsInt64()] = uc.column(1).Get(i).AsInt64();
  }
  int64_t expected = 0;
  for (size_t i = 0; i < tc.num_rows(); ++i) {
    auto it = um.find(tc.column(0).Get(i).AsInt64());
    if (it != um.end()) {
      expected += tc.column(1).Get(i).AsInt64() * it->second;
    }
  }
  EXPECT_EQ(joined.column(0).Get(0).AsInt64(), expected);
}

// Property: LEFT JOIN row count = INNER JOIN + unmatched left rows, and
// FULL = LEFT + unmatched right rows.
TEST_P(RandomTableTest, OuterJoinArithmetic) {
  auto count = [&](const std::string& sql) {
    return Run(sql).column(0).Get(0).AsInt64();
  };
  int64_t inner =
      count("SELECT COUNT(*) AS c FROM t JOIN u ON t.k = u.k");
  int64_t left =
      count("SELECT COUNT(*) AS c FROM t LEFT JOIN u ON t.k = u.k");
  int64_t full =
      count("SELECT COUNT(*) AS c FROM t FULL JOIN u ON t.k = u.k");
  int64_t t_unmatched = count(
      "SELECT COUNT(*) AS c FROM t WHERE NOT EXISTS "
      "(SELECT 1 FROM u WHERE u.k = t.k)");
  int64_t u_unmatched = count(
      "SELECT COUNT(*) AS c FROM u WHERE NOT EXISTS "
      "(SELECT 1 FROM t WHERE t.k = u.k)");
  EXPECT_EQ(left, inner + t_unmatched);
  EXPECT_EQ(full, left + u_unmatched);
}

// Property: semi + anti partitions the left table.
TEST_P(RandomTableTest, SemiAntiPartition) {
  auto count = [&](const std::string& sql) {
    return Run(sql).column(0).Get(0).AsInt64();
  };
  int64_t all = count("SELECT COUNT(*) AS c FROM t");
  int64_t semi = count(
      "SELECT COUNT(*) AS c FROM t WHERE EXISTS "
      "(SELECT 1 FROM u WHERE u.k = t.k)");
  int64_t anti = count(
      "SELECT COUNT(*) AS c FROM t WHERE NOT EXISTS "
      "(SELECT 1 FROM u WHERE u.k = t.k)");
  EXPECT_EQ(all, semi + anti);
}

// Property: every profile and thread count produces identical results for
// a representative join+aggregate query.
TEST_P(RandomTableTest, ProfilesAndThreadsAgree) {
  const char* sql =
      "SELECT t.g AS g, SUM(t.v * 2) AS s, COUNT(*) AS c "
      "FROM t, u WHERE t.k = u.k AND t.v > 10 GROUP BY t.g";
  Table reference = Run(sql);
  for (auto profile : {BackendProfile::kVectorized,
                       BackendProfile::kCompiled,
                       BackendProfile::kResearch}) {
    for (int threads : {1, 3}) {
      QueryOptions o;
      o.profile = profile;
      o.num_threads = threads;
      Table r = Run(sql, o);
      std::string diff;
      EXPECT_TRUE(Table::UnorderedEquals(reference, r, 1e-9, &diff))
          << BackendProfileName(profile) << "/" << threads << ": " << diff;
    }
  }
}

// Property: ORDER BY output is a permutation of the unordered result and
// is correctly ordered.
TEST_P(RandomTableTest, SortIsOrderedPermutation) {
  Table unsorted = Run("SELECT k, v FROM t");
  Table sorted = Run("SELECT k, v FROM t ORDER BY k DESC, v ASC");
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(unsorted, sorted, 1e-9, &diff)) << diff;
  for (size_t i = 1; i < sorted.num_rows(); ++i) {
    int64_t ka = sorted.column(0).Get(i - 1).AsInt64();
    int64_t kb = sorted.column(0).Get(i).AsInt64();
    EXPECT_GE(ka, kb);
    if (ka == kb && sorted.column(1).IsValid(i - 1) &&
        sorted.column(1).IsValid(i)) {
      EXPECT_LE(sorted.column(1).Get(i - 1).ToDouble(),
                sorted.column(1).Get(i).ToDouble());
    }
  }
}

// Property: DISTINCT is idempotent.
TEST_P(RandomTableTest, DistinctIdempotent) {
  Table once = Run("SELECT DISTINCT g, k FROM t");
  ASSERT_TRUE(db_.CreateTable("once_t", once).ok());
  Table twice = Run("SELECT DISTINCT g, k FROM once_t");
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(once, twice, 1e-9, &diff)) << diff;
  ASSERT_TRUE(db_.catalog().DropTable("once_t").ok());
}

// Property: LIMIT N returns min(N, rows) and a prefix of the sort order.
TEST_P(RandomTableTest, LimitPrefix) {
  Table all = Run("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v");
  Table top = Run("SELECT v FROM t WHERE v IS NOT NULL ORDER BY v LIMIT 7");
  ASSERT_EQ(top.num_rows(), std::min<size_t>(7, all.num_rows()));
  for (size_t i = 0; i < top.num_rows(); ++i) {
    EXPECT_EQ(top.column(0).Get(i).ToDouble(),
              all.column(0).Get(i).ToDouble());
  }
}

// Property: row_number over a unique ordering assigns 1..N exactly once.
TEST_P(RandomTableTest, RowNumberIsPermutation) {
  Table r = Run(
      "SELECT row_number() OVER (ORDER BY v, k, g) AS rn FROM t");
  std::set<int64_t> seen;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    seen.insert(r.column(0).Get(i).AsInt64());
  }
  EXPECT_EQ(seen.size(), r.num_rows());
  if (!seen.empty()) {
    EXPECT_EQ(*seen.begin(), 1);
    EXPECT_EQ(*seen.rbegin(), static_cast<int64_t>(r.num_rows()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableTest,
                         ::testing::Values(1, 2, 3, 7, 1234, 987654));

// ----------------------------------------------------------- LIKE fuzz

struct LikeCase {
  const char* text;
  const char* pattern;
  bool expect;
};

class LikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeTest, MatchesReference) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(string_util::Like(c.text, c.pattern), c.expect)
      << "'" << c.text << "' LIKE '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeTest,
    ::testing::Values(
        LikeCase{"", "", true}, LikeCase{"", "%", true},
        LikeCase{"a", "", false}, LikeCase{"abc", "abc", true},
        LikeCase{"abc", "a%", true}, LikeCase{"abc", "%c", true},
        LikeCase{"abc", "%b%", true}, LikeCase{"abc", "a_c", true},
        LikeCase{"abc", "____", false}, LikeCase{"abc", "___", true},
        LikeCase{"aXbXc", "a%b%c", true}, LikeCase{"ac", "a%b%c", false},
        LikeCase{"mississippi", "%iss%ipp%", true},
        LikeCase{"mississippi", "%iss%issi", false},
        LikeCase{"%", "\\%", false},  // no escape support: literal backslash
        LikeCase{"special packages requests", "special%requests%", true},
        LikeCase{"requests special", "special%requests%", false},
        LikeCase{"aaa", "%a%a%a%", true}, LikeCase{"aa", "%a%a%a%", false}));

}  // namespace
}  // namespace pytond::engine
