#include <gtest/gtest.h>

#include <random>

#include "core/session.h"
#include "frontend/translate/einsum.h"

namespace pytond::frontend {
namespace {

/// Builds a dense matrix table `name(id, c0..c{cols-1})` with random
/// values, and its COO twin `name_coo`.
void MakeMatrix(Session* session, const std::string& name, size_t rows,
                size_t cols, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Table t;
  std::vector<int64_t> ids(rows);
  std::iota(ids.begin(), ids.end(), 0);
  ASSERT_TRUE(t.AddColumn("id", Column::Int64(std::move(ids))).ok());
  std::vector<int64_t> cr, cc;
  std::vector<double> cv;
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> col(rows);
    for (size_t r = 0; r < rows; ++r) {
      col[r] = static_cast<double>(rng() % 19) - 9.0;
      if (col[r] != 0.0) {
        cr.push_back(static_cast<int64_t>(r));
        cc.push_back(static_cast<int64_t>(c));
        cv.push_back(col[r]);
      }
    }
    ASSERT_TRUE(t.AddColumn("c" + std::to_string(c),
                            Column::Float64(std::move(col)))
                    .ok());
  }
  TableConstraints pk;
  pk.primary_key = {"id"};
  ASSERT_TRUE(session->db().CreateTable(name, std::move(t), pk).ok());
  Table coo;
  ASSERT_TRUE(coo.AddColumn("row_id", Column::Int64(std::move(cr))).ok());
  ASSERT_TRUE(coo.AddColumn("col_id", Column::Int64(std::move(cc))).ok());
  ASSERT_TRUE(coo.AddColumn("val", Column::Float64(std::move(cv))).ok());
  ASSERT_TRUE(session->db().CreateTable(name + "_coo", std::move(coo)).ok());
}

struct EinsumCase {
  const char* spec;
  int operands;  // 1 or 2
  size_t rows;
  size_t cols;
};

/// Property: for each supported dense kernel, PyTond's compiled SQL agrees
/// with the eager reference over random matrices.
class DenseEinsumTest : public ::testing::TestWithParam<EinsumCase> {};

TEST_P(DenseEinsumTest, CompiledMatchesEager) {
  const EinsumCase& c = GetParam();
  Session session;
  MakeMatrix(&session, "m1", c.rows, c.cols, 101 + c.rows * 7 + c.cols);
  MakeMatrix(&session, "m2", c.rows, c.cols, 577 + c.cols * 3);
  std::string source =
      std::string("@pytond()\n") + "def f(m1, m2):\n" +
      "    a = m1.to_numpy()\n" + "    b = m2.to_numpy()\n" +
      "    out = np.einsum('" + c.spec + "', " +
      (c.operands == 1 ? "a" : "a, b") + ")\n" + "    return out\n";
  auto eager = session.RunBaseline(source);
  ASSERT_TRUE(eager.ok()) << c.spec << ": " << eager.status().ToString();
  auto compiled = session.Run(source);
  ASSERT_TRUE(compiled.ok()) << c.spec << ": "
                             << compiled.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**compiled, *eager, 1e-6, &diff))
      << c.spec << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, DenseEinsumTest,
    ::testing::Values(EinsumCase{"ij->", 1, 40, 3},
                      EinsumCase{"ij->i", 1, 40, 3},
                      EinsumCase{"ij,ij->ij", 2, 30, 4},
                      EinsumCase{"ij,ik->jk", 2, 50, 3},
                      EinsumCase{"ij,ik->jk", 2, 17, 5},
                      EinsumCase{"ij,jk->ik", 2, 4, 4}),
    [](const ::testing::TestParamInfo<EinsumCase>& info) {
      std::string s = info.param.spec;
      for (char& ch : s) {
        if (ch == ',' ) ch = '_';
        if (ch == '-' || ch == '>') ch = 'T';
      }
      return s + "_" + std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

/// Property: sparse (COO) lowering computes the same contraction as the
/// dense one, for varying shapes and sparsity patterns.
class SparseDenseAgreementTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SparseDenseAgreementTest, GramMatrixAgrees) {
  auto [rows, cols] = GetParam();
  Session session;
  MakeMatrix(&session, "m", rows, cols, rows * 31 + cols);
  std::string dense_src =
      "@pytond()\ndef f(m):\n    a = m.to_numpy()\n"
      "    out = np.einsum('ij,ik->jk', a, a)\n    return out\n";
  std::string sparse_src =
      "@pytond(layout='sparse')\ndef f(m_coo):\n"
      "    out = np.einsum('ij,ik->jk', m_coo, m_coo)\n    return out\n";
  auto dense = session.Run(dense_src);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  auto sparse = session.Run(sparse_src);
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
  // Compare cellwise: sparse emits (row, col, val) triples without zeros.
  const Table& d = **dense;
  const Table& s = **sparse;
  double checked = 0;
  for (size_t i = 0; i < s.num_rows(); ++i) {
    auto r = static_cast<size_t>(s.column(0).Get(i).AsInt64());
    auto c = static_cast<size_t>(s.column(1).Get(i).AsInt64());
    double v = s.column(2).Get(i).ToDouble();
    EXPECT_NEAR(v, d.column(c + 1).Get(r).ToDouble(), 1e-6)
        << "(" << r << "," << c << ")";
    checked += 1;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseDenseAgreementTest,
                         ::testing::Values(std::make_pair(10, 2),
                                           std::make_pair(64, 3),
                                           std::make_pair(33, 6),
                                           std::make_pair(128, 4)));

/// Property: the einsum planner is deterministic and its final step is
/// always a recognized kernel.
class PlannerSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannerSweepTest, ConvergesToKernel) {
  auto spec = ParseEinsumSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  auto plan = PlanEinsum(*spec);
  ASSERT_TRUE(plan.ok()) << GetParam() << ": " << plan.status().ToString();
  ASSERT_FALSE(plan->empty());
  const std::string& last = plan->back().kernel;
  EXPECT_TRUE(last.rfind("ES", 0) == 0 || last == "COLSUM" ||
              last == "MATSUM" || last == "INNER" || last == "MATVEC" ||
              last == "MATMUL" || last == "VSCALE" || last == "MSCALE")
      << GetParam() << " ended with step '" << last << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Specs, PlannerSweepTest,
    ::testing::Values("i->", "ij->i", "ij->j", "ii->i", "ij->",
                      "i,i->", "ij,ij->ij", "ij,ik->jk", "ij,ik->ij",
                      "ij,jk->ik", "ij,j->i", "ab,cc->ba", "ij,kk->ij",
                      "aa,bc->bc", "ab,b->a"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string s = info.param;
      std::string out;
      for (char ch : s) {
        if (std::isalnum(static_cast<unsigned char>(ch))) out += ch;
        else out += '_';
      }
      return out;
    });

}  // namespace
}  // namespace pytond::frontend

namespace pytond::frontend {
namespace {

TEST(NaryEinsumTest, ContractionPathCoversAllOperands) {
  auto spec = ParseEinsumSpec("ij,jk,k->i");
  ASSERT_TRUE(spec.ok());
  auto path = PlanContractionPath(*spec);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->size(), 2u);
  // Greedy order: matmul first, then matvec.
  EXPECT_EQ(path->at(0).binary.ToString(), "ij,jk->ik");
  EXPECT_EQ(path->at(1).binary.ToString(), "ik,k->i");
}

TEST(NaryEinsumTest, IntermediatesStayWithinOrderTwo) {
  // A 4-operand ring contraction: every intermediate must keep at most
  // two live letters (matrix-representable).
  auto spec = ParseEinsumSpec("ab,bc,cd,da->");
  ASSERT_TRUE(spec.ok());
  auto path = PlanContractionPath(*spec);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  for (const auto& step : *path) {
    EXPECT_LE(step.binary.output.size(), 2u) << step.binary.ToString();
  }
}

TEST(NaryEinsumTest, ThreeOperandChainMatchesEager) {
  Session session;
  MakeMatrix(&session, "a", 12, 3, 5);
  MakeMatrix(&session, "b", 3, 2, 6);
  MakeMatrix(&session, "v", 2, 1, 8);
  const char* src = R"(
@pytond()
def f(a, b, v):
    x = a.to_numpy()
    y = b.to_numpy()
    z = v.to_numpy()
    out = np.einsum('ij,jk,k->i', x, y, z)
    return out
)";
  auto eager = session.RunBaseline(src);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  auto compiled = session.Run(src);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**compiled, *eager, 1e-6, &diff))
      << diff;
}

}  // namespace
}  // namespace pytond::frontend
