#include <gtest/gtest.h>

#include <set>

#include "analysis/verifier.h"
#include "core/session.h"
#include "frontend/compiler.h"
#include "tondir/ir.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond::analysis {
namespace {

/// Parses `text` (which may use '@base' directives) and verifies it.
std::vector<Diagnostic> Lint(const std::string& text,
                             std::set<std::string> extra_bases = {},
                             bool implicit_bases = false) {
  auto p = tondir::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  if (!p.ok()) return {};
  VerifyOptions options;
  options.implicit_bases = implicit_bases;
  options.base_relations = std::move(extra_bases);
  for (const auto& [rel, cols] : p->base_columns) {
    options.base_relations.insert(rel);
  }
  return VerifyProgram(*p, options);
}

bool HasCode(const std::vector<Diagnostic>& diags, const char* code) {
  for (const auto& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

// -------------------------------------------------------- clean inputs

TEST(VerifierTest, CleanProgramHasNoDiagnostics) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (a > 1).\n"
      "s(x, y) :- r(x), (y = (x * 2)).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, BaseDirectiveDeclaresSchemaAndUniqueness) {
  auto p = tondir::ParseProgram(
      "@base t(id, v) unique(0).\n"
      "r(id, v) :- t(id, v).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->base_columns.count("t"), 1u);
  EXPECT_EQ(p->base_columns["t"],
            (std::vector<std::string>{"id", "v"}));
  EXPECT_EQ(p->relation_info["t"].unique_positions, (std::set<size_t>{0}));
}

TEST(VerifierTest, BaseDirectiveAcceptsColumnTypes) {
  auto p = tondir::ParseProgram(
      "@base t(id:int, name:str, score:float, ok:bool, d:date, untyped)"
      " unique(0).\n"
      "r(id) :- t(id, n, s, o, d, u).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->base_column_types.count("t"), 1u);
  EXPECT_EQ(p->base_column_types["t"],
            (std::vector<DataType>{DataType::kInt64, DataType::kString,
                                   DataType::kFloat64, DataType::kBool,
                                   DataType::kDate, DataType::kNull}));
  // Unknown type names are parse errors, not silent defaults.
  EXPECT_FALSE(tondir::ParseProgram("@base t(a:decimal).\nr(a) :- t(a).")
                   .ok());
}

// ------------------------------------------------- one test per T-code

TEST(VerifierTest, T001UndefinedRelation) {
  auto diags = Lint("r(a) :- missing(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedRelation))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T001UndefinedRelationInsideExists) {
  // The old Program::Validate blind spot: accesses inside exists(..) were
  // never checked.
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), exists(missing(c)).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedRelation))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T002ArityMismatch) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b, c).");
  EXPECT_TRUE(HasCode(diags, codes::kArityMismatch))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T002ArityInferredAcrossRules) {
  // No schema: arity fixed by the first access, second access disagrees.
  auto diags = Lint(
      "r(a) :- t(a, b).\n"
      "s(x) :- t(x, y, z).",
      {"t"});
  EXPECT_TRUE(HasCode(diags, codes::kArityMismatch))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T003UndefinedHeadVar) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(zz) :- t(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedHeadVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T004UndefinedGroupVar) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) group(a, zz) :- t(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedGroupVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T005ColNamesArityMismatch) {
  auto p = tondir::ParseProgram(
      "@base t(a, b).\n"
      "r(a, b) :- t(a, b).");
  ASSERT_TRUE(p.ok());
  p->rules[0].head.col_names.pop_back();
  VerifyOptions options;
  options.base_relations = {"t"};
  auto diags = VerifyProgram(*p, options);
  EXPECT_TRUE(HasCode(diags, codes::kColNamesArity))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T006UndefinedVarInFilter) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (c > 1).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T006UndefinedVarInAssignmentTerm) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(x) :- t(a, b), (x = (a + nope)).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T007ExistsVarLeaksIntoFilter) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c).\n"
      "r(a) :- t(a, b), exists(u(c)), (c > 1).");
  EXPECT_TRUE(HasCode(diags, codes::kExistsLeak))
      << FormatDiagnostics(diags);
  EXPECT_FALSE(HasCode(diags, codes::kUndefinedVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T007ExistsVarLeaksIntoHead) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c).\n"
      "r(c) :- t(a, b), exists(u(c)).");
  EXPECT_TRUE(HasCode(diags, codes::kExistsLeak))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, ExistsMayUseOuterVars) {
  // Correlation the other way round is fine: exists bodies see outer vars.
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c).\n"
      "r(a) :- t(a, b), !exists(u(c), (c = a)).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T008UngroupedHeadVar) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, b) group(a) :- t(a, b), (s = sum(b)).");
  EXPECT_TRUE(HasCode(diags, codes::kUngroupedHeadVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T008AllowsExpressionsOverGroupVarsAndAggregates) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, frac) group(a) :- t(a, b), (s = sum(b)), (c = count(b)), "
      "(frac = s / c).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T009NestedAggregate) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, x) group(a) :- t(a, b), (x = sum(sum(b))).");
  EXPECT_TRUE(HasCode(diags, codes::kNestedAggregate))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T010AggregateInFilter) {
  // HAVING-style filters on aggregate results must live in a later rule.
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) group(a) :- t(a, b), (s = sum(b)), (s > 10).");
  EXPECT_TRUE(HasCode(diags, codes::kAggregateOutsideAssignment))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T010AggregateInsideExists) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), exists((x = sum(b))).");
  EXPECT_TRUE(HasCode(diags, codes::kAggregateOutsideAssignment))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T011SortWithoutLimitOnNonSink) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) sort(a asc) :- t(a, b).\n"
      "s(x) :- r(x).");
  EXPECT_TRUE(HasCode(diags, codes::kSortWithoutLimitNotSink))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, TopNOnNonSinkIsAllowed) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) sort(a asc) limit(5) :- t(a, b).\n"
      "s(x) :- r(x).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T012SortKeyNotInHead) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) sort(b desc) :- t(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kSortKeyNotInHead))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T013OuterMarkerOddKeyCount) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c, d).\n"
      "r(a, c) :- t(a, b), u(c, d), @outer_left(a, c, b).");
  EXPECT_TRUE(HasCode(diags, codes::kBadOuterMarker))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T013OuterMarkerNeedsTwoAccesses) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), @outer_left(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kBadOuterMarker))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, WellFormedOuterJoinIsClean) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c, d).\n"
      "r(a, c) :- t(a, b), u(c, d), @outer_left(a, c).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T014UnknownMarkerIsWarningOnly) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), @frobnicate(a).");
  EXPECT_TRUE(HasCode(diags, codes::kUnknownMarker))
      << FormatDiagnostics(diags);
  EXPECT_FALSE(HasErrors(diags)) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T015DeadRuleIsWarningOnly) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "dead(a) :- t(a, b).\n"
      "r(x) :- t(x, y).");
  EXPECT_TRUE(HasCode(diags, codes::kDeadRule)) << FormatDiagnostics(diags);
  EXPECT_FALSE(HasErrors(diags)) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T014ReportsMarkerLocation) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), @frobnicate(a).");
  const Diagnostic* d = nullptr;
  for (const auto& dg : diags) {
    if (dg.code == codes::kUnknownMarker) d = &dg;
  }
  ASSERT_NE(d, nullptr) << FormatDiagnostics(diags);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->rule_index, 0);
  EXPECT_EQ(d->atom_index, 1);
  EXPECT_NE(d->message.find("@frobnicate"), std::string::npos) << d->message;
}

TEST(VerifierTest, T015DeadChainFlagsEveryRule) {
  // dead2 reads dead1, but neither feeds the sink: reachability is
  // computed transitively from the sink, so both rules are flagged.
  auto diags = Lint(
      "@base t(a, b).\n"
      "dead1(a) :- t(a, b).\n"
      "dead2(x) :- dead1(x).\n"
      "r(x) :- t(x, y).");
  std::set<int> dead_rules;
  for (const auto& d : diags) {
    if (d.code == codes::kDeadRule) dead_rules.insert(d.rule_index);
  }
  EXPECT_EQ(dead_rules, (std::set<int>{0, 1})) << FormatDiagnostics(diags);
  EXPECT_FALSE(HasErrors(diags)) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T015RuleReachableOnlyViaExistsIsLive) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "helper(a) :- t(a, b).\n"
      "r(x) :- t(x, y), exists(helper(x)).");
  EXPECT_FALSE(HasCode(diags, codes::kDeadRule)) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T016RelationRedefined) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b).\n"
      "r(b) :- t(b, c).");
  EXPECT_TRUE(HasCode(diags, codes::kRelationRedefined))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T016RuleShadowsBaseRelation) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "t(a) :- t(a, b).\n"
      "r(x) :- t(x, y).");
  EXPECT_TRUE(HasCode(diags, codes::kRelationRedefined))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T017ConstRelMixedTypes) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (x = [1, \"two\"]), (x = a).");
  EXPECT_TRUE(HasCode(diags, codes::kConstRelHeterogeneous))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T018EmptyConstRel) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (x = []), (x = a).");
  EXPECT_TRUE(HasCode(diags, codes::kConstRelEmpty))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T019UidWithoutRelationAccess) {
  auto diags = Lint("r(x) :- (x = uid()).");
  EXPECT_TRUE(HasCode(diags, codes::kUidWithoutAccess))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, UidWithRelationAccessIsClean) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, x) :- t(a, b), (x = uid()).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

// ------------------------------------------------------------- options

TEST(VerifierTest, ImplicitBasesSuppressT001AndInferArity) {
  auto diags = Lint("r(a) :- mystery(a, b).", {}, /*implicit_bases=*/true);
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
  auto diags2 = Lint("r(a) :- mystery(a, b), mystery(a, b, c).", {},
                     /*implicit_bases=*/true);
  EXPECT_TRUE(HasCode(diags2, codes::kArityMismatch))
      << FormatDiagnostics(diags2);
}

TEST(VerifierTest, DiagnosticRenderingIsStable) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (c > 1).");
  ASSERT_TRUE(HasCode(diags, codes::kUndefinedVar));
  for (const auto& d : diags) {
    if (d.code == codes::kUndefinedVar) {
      EXPECT_EQ(d.rule_index, 0);
      EXPECT_EQ(d.atom_index, 1);
      EXPECT_NE(d.ToString().find("error[T006]"), std::string::npos)
          << d.ToString();
    }
  }
}

// ----------------------------------------------- Validate thin wrapper

TEST(ValidateWrapperTest, FirstErrorBecomesStatus) {
  auto p = tondir::ParseProgram("r(zz) :- t(a, b).");
  ASSERT_TRUE(p.ok());
  Status s = p->Validate({"t"});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("T003"), std::string::npos) << s.ToString();
}

TEST(ValidateWrapperTest, WarningsDoNotFailValidation) {
  auto p = tondir::ParseProgram(
      "dead(a) :- t(a, b).\n"
      "r(x) :- t(x, y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Validate({"t"}).ok());
}

// --------------------------------------- whole-pipeline integration

class TpchVerifyTest : public ::testing::Test {
 protected:
  static Session* session_;

  static void SetUpTestSuite() {
    session_ = new Session();
    ASSERT_TRUE(workloads::tpch::Populate(&session_->db(), 0.01).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
};

Session* TpchVerifyTest::session_ = nullptr;

/// Every TPC-H query must compile cleanly with post-translation
/// verification AND per-pass verification forced on at full optimization.
TEST_F(TpchVerifyTest, AllQueriesVerifyThroughEveryPass) {
  for (const auto& q : workloads::tpch::AllQueries()) {
    frontend::CompileOptions options;
    options.verify = true;
    options.verify_each_pass = true;
    auto c = frontend::CompileFunction(q.source, session_->db().catalog(),
                                       options);
    EXPECT_TRUE(c.ok()) << q.name << ": " << c.status().ToString();
  }
}

TEST_F(TpchVerifyTest, AllOptimizationLevelsVerify) {
  for (int level = 0; level <= 4; ++level) {
    for (const auto& q : workloads::tpch::AllQueries()) {
      frontend::CompileOptions options;
      options.optimization_level = level;
      options.verify = true;
      options.verify_each_pass = true;
      auto c = frontend::CompileFunction(q.source, session_->db().catalog(),
                                         options);
      EXPECT_TRUE(c.ok()) << q.name << " at O" << level << ": "
                          << c.status().ToString();
    }
  }
}

TEST(DatasciVerifyTest, WorkloadsVerifyThroughEveryPass) {
  Session session;
  ASSERT_TRUE(
      workloads::datasci::PopulateCrimeIndex(&session.db(), 200).ok());
  ASSERT_TRUE(
      workloads::datasci::PopulateBirthAnalysis(&session.db(), 300).ok());
  const struct { const char* name; const char* source; } sources[] = {
      {"CrimeIndex", workloads::datasci::CrimeIndexSource()},
      {"BirthAnalysis", workloads::datasci::BirthAnalysisSource()},
  };
  for (const auto& w : sources) {
    frontend::CompileOptions options;
    options.verify = true;
    options.verify_each_pass = true;
    auto c =
        frontend::CompileFunction(w.source, session.db().catalog(), options);
    EXPECT_TRUE(c.ok()) << w.name << ": " << c.status().ToString();
  }
}

// --------------------------------------- deep lints (dataflow tier)
//
// One positive and one negative case per T020..T032 code. Every emitted
// diagnostic must carry a non-empty inference chain (`notes`) — the
// --explain-diag contract.

std::vector<Diagnostic> DeepLint(const std::string& text) {
  auto p = tondir::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  if (!p.ok()) return {};
  VerifyOptions options;
  options.deep_lints = true;
  for (const auto& [rel, cols] : p->base_columns) {
    options.base_relations.insert(rel);
  }
  return VerifyProgram(*p, options);
}

const Diagnostic* FindCode(const std::vector<Diagnostic>& diags,
                           const char* code) {
  for (const auto& d : diags) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

/// Asserts the code is present AND explains itself.
void ExpectCodeWithChain(const std::vector<Diagnostic>& diags,
                         const char* code) {
  const Diagnostic* d = FindCode(diags, code);
  ASSERT_NE(d, nullptr) << "missing " << code << "\n"
                        << FormatDiagnostics(diags);
  EXPECT_FALSE(d->notes.empty())
      << code << " has no inference chain: " << d->message;
}

TEST(DeepLintTest, T020TypeMismatchIntVsString) {
  auto diags = DeepLint(
      "@base t(a:int, b:str).\n"
      "out(a) :- t(a, b), (a = \"expensive\").");
  ExpectCodeWithChain(diags, codes::kTypeMismatch);
  EXPECT_TRUE(HasErrors(diags));
}

TEST(DeepLintTest, T020NegativeComparableTypes) {
  auto diags = DeepLint(
      "@base t(a:int, b:float).\n"
      "out(a) :- t(a, b), (a = 5), (b > 1.5).");
  EXPECT_EQ(FindCode(diags, codes::kTypeMismatch), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T020NegativeDateVsParsableString) {
  // Date columns may be compared against date-shaped string literals:
  // the frontend emits those and sqlgen adapts them per dialect.
  auto diags = DeepLint(
      "@base t(d:date, v:int).\n"
      "out(v) :- t(d, v), (d < \"1995-01-01\").");
  EXPECT_EQ(FindCode(diags, codes::kTypeMismatch), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T021AlwaysFalseFromIntervalContradiction) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a) :- t(a), (a > 10), (a < 5).");
  ExpectCodeWithChain(diags, codes::kAlwaysFalsePredicate);
  EXPECT_FALSE(HasErrors(diags));
}

TEST(DeepLintTest, T021NegativeSatisfiableRange) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a) :- t(a), (a > 10), (a < 20).");
  EXPECT_EQ(FindCode(diags, codes::kAlwaysFalsePredicate), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T022AlwaysTrueFromImpliedRange) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a) :- t(a), (a > 10), (a > 5).");
  ExpectCodeWithChain(diags, codes::kAlwaysTruePredicate);
}

TEST(DeepLintTest, T022NegativeTighterFilter) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a) :- t(a), (a > 10), (a > 20).");
  EXPECT_EQ(FindCode(diags, codes::kAlwaysTruePredicate), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T022NegativeNullableOperandSuppresses) {
  // The right side of a left outer join is nullable; a NULL makes the
  // predicate unknown (row dropped), so "always true" would be unsound.
  auto diags = DeepLint(
      "@base t(k:int, v:int).\n"
      "@base u(k:int, w:int).\n"
      "out(k, w) :- t(k, v), u(k2, w), @outer_left(k, k2), (w > 5), "
      "(w > 1).");
  EXPECT_EQ(FindCode(diags, codes::kAlwaysTruePredicate), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T023NullableArithmeticAfterOuterJoin) {
  auto diags = DeepLint(
      "@base t(k:int, v:int).\n"
      "@base u(k:int, w:int).\n"
      "out(k, w2) :- t(k, v), u(k2, w), @outer_left(k, k2), "
      "(w2 = (w + 1)).");
  ExpectCodeWithChain(diags, codes::kNullableArithmetic);
}

TEST(DeepLintTest, T023NegativeInnerJoin) {
  auto diags = DeepLint(
      "@base t(k:int, v:int).\n"
      "@base u(k:int, w:int).\n"
      "out(k, w2) :- t(k, v), u(k, w), (w2 = (w + 1)).");
  EXPECT_EQ(FindCode(diags, codes::kNullableArithmetic), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T024UnreachableColumn) {
  auto diags = DeepLint(
      "@base t(a:int, b:int).\n"
      "mid(a, b) :- t(a, b).\n"
      "out(a) :- mid(a, b).");
  ExpectCodeWithChain(diags, codes::kUnreachableColumn);
}

TEST(DeepLintTest, T024NegativeAllColumnsRead) {
  auto diags = DeepLint(
      "@base t(a:int, b:int).\n"
      "mid(a, b) :- t(a, b).\n"
      "out(a, b) :- mid(a, b).");
  EXPECT_EQ(FindCode(diags, codes::kUnreachableColumn), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T025RedundantDistinctOverDeclaredKey) {
  auto diags = DeepLint(
      "@base t(id:int, v:int) unique(0).\n"
      "out(id, v) distinct :- t(id, v).");
  ExpectCodeWithChain(diags, codes::kRedundantDistinct);
}

TEST(DeepLintTest, T025NegativeNoKey) {
  auto diags = DeepLint(
      "@base t(id:int, v:int).\n"
      "out(id, v) distinct :- t(id, v).");
  EXPECT_EQ(FindCode(diags, codes::kRedundantDistinct), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T026ConstantSortKey) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a, c) sort(c asc) :- t(a), (c = 5).");
  ExpectCodeWithChain(diags, codes::kConstantSortKey);
}

TEST(DeepLintTest, T026NegativeVaryingSortKey) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a) sort(a asc) :- t(a).");
  EXPECT_EQ(FindCode(diags, codes::kConstantSortKey), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T027AggregateOverEmptyBody) {
  auto diags = DeepLint(
      "@base t(a:int, b:int).\n"
      "out(s) :- t(a, b), (a > 10), (a < 5), (s = sum(b)).");
  ExpectCodeWithChain(diags, codes::kAggregateOverEmpty);
}

TEST(DeepLintTest, T027NegativeSatisfiableBody) {
  auto diags = DeepLint(
      "@base t(a:int, b:int).\n"
      "out(s) :- t(a, b), (a > 10), (s = sum(b)).");
  EXPECT_EQ(FindCode(diags, codes::kAggregateOverEmpty), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T028DivisionByConstantZero) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(x) :- t(a), (x = (a / 0)).");
  ExpectCodeWithChain(diags, codes::kDivisionByZero);
}

TEST(DeepLintTest, T028NegativeNonZeroDivisor) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(x) :- t(a), (x = (a / 2)).");
  EXPECT_EQ(FindCode(diags, codes::kDivisionByZero), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T029RedundantGroupByOverKey) {
  auto diags = DeepLint(
      "@base t(id:int, v:int) unique(0).\n"
      "out(id, s) group(id) :- t(id, v), (s = sum(v)).");
  ExpectCodeWithChain(diags, codes::kRedundantGroupBy);
}

TEST(DeepLintTest, T029NegativeGroupOverNonKey) {
  auto diags = DeepLint(
      "@base t(id:int, v:int) unique(0).\n"
      "out(v, s) group(v) :- t(id, v), (s = sum(id)).");
  EXPECT_EQ(FindCode(diags, codes::kRedundantGroupBy), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T030StringOpOnIntColumn) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(x) :- t(a), (x = lower(a)).");
  ExpectCodeWithChain(diags, codes::kStringOpOnNonString);
}

TEST(DeepLintTest, T030NegativeStringColumn) {
  auto diags = DeepLint(
      "@base t(a:str).\n"
      "out(x) :- t(a), (x = lower(a)).");
  EXPECT_EQ(FindCode(diags, codes::kStringOpOnNonString), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T031ComparisonAgainstNull) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a) :- t(a), (a = null).");
  ExpectCodeWithChain(diags, codes::kNullComparison);
}

TEST(DeepLintTest, T031NegativeNonNullConstant) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a) :- t(a), (a = 5).");
  EXPECT_EQ(FindCode(diags, codes::kNullComparison), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, T032EmptySinkResult) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "mid(a) :- t(a), (a > 10), (a < 5).\n"
      "out(a) :- mid(a).");
  ExpectCodeWithChain(diags, codes::kEmptyResult);
}

TEST(DeepLintTest, T032NegativeNonEmptySink) {
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "mid(a) :- t(a), (a > 10).\n"
      "out(a) :- mid(a).");
  EXPECT_EQ(FindCode(diags, codes::kEmptyResult), nullptr)
      << FormatDiagnostics(diags);
}

TEST(DeepLintTest, DeepTierOffByDefault) {
  // Without deep_lints, the dataflow tier never runs: the same program
  // that trips T021/T032 above verifies silently.
  auto diags = Lint(
      "@base t(a, b).\n"
      "out(a) :- t(a, b), (a > 10), (a < 5).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(DeepLintTest, DeepTierSkippedWhenStructuralErrors) {
  // Structural errors poison dataflow input; the deep tier must not run
  // (and must not crash) on a program that fails the structural tier.
  auto diags = DeepLint(
      "@base t(a:int).\n"
      "out(a, zzz) :- t(a), (a > 10), (a < 5).");
  EXPECT_TRUE(HasErrors(diags));
  EXPECT_EQ(FindCode(diags, codes::kAlwaysFalsePredicate), nullptr)
      << FormatDiagnostics(diags);
}

// Frontend integration: catalog schema types seed the dataflow lattice.

TEST(DeepLintFrontendTest, CatalogTypesFlowIntoDiagnostics) {
  Session session;
  ASSERT_TRUE(workloads::tpch::Populate(&session.db(), 0.01).ok());
  RunOptions opts;
  opts.deep_lints = true;
  auto c = session.Compile(R"(
@pytond()
def q(lineitem):
    v = lineitem[lineitem.l_quantity > 100]
    w = v[v.l_quantity < 50]
    return w
)",
                           opts);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  const Diagnostic* d =
      FindCode(c->diagnostics, codes::kAlwaysFalsePredicate);
  ASSERT_NE(d, nullptr) << FormatDiagnostics(c->diagnostics);
  EXPECT_FALSE(d->notes.empty());
  EXPECT_NE(FindCode(c->diagnostics, codes::kEmptyResult), nullptr);
}

TEST(DeepLintFrontendTest, TpchQueriesAreDeepLintClean) {
  // The production queries must stay free of deep-lint errors (warnings
  // on redundant patterns are allowed, type errors are not).
  Session session;
  ASSERT_TRUE(workloads::tpch::Populate(&session.db(), 0.01).ok());
  for (const auto& q : workloads::tpch::AllQueries()) {
    RunOptions opts;
    opts.deep_lints = true;
    auto c = session.Compile(q.source, opts);
    ASSERT_TRUE(c.ok()) << q.name << ": " << c.status().ToString();
    EXPECT_FALSE(HasErrors(c->diagnostics))
        << q.name << ":\n" << FormatDiagnostics(c->diagnostics);
  }
}

}  // namespace
}  // namespace pytond::analysis
