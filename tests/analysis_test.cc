#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "core/session.h"
#include "frontend/compiler.h"
#include "tondir/ir.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond::analysis {
namespace {

/// Parses `text` (which may use '@base' directives) and verifies it.
std::vector<Diagnostic> Lint(const std::string& text,
                             std::set<std::string> extra_bases = {},
                             bool implicit_bases = false) {
  auto p = tondir::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  if (!p.ok()) return {};
  VerifyOptions options;
  options.implicit_bases = implicit_bases;
  options.base_relations = std::move(extra_bases);
  for (const auto& [rel, cols] : p->base_columns) {
    options.base_relations.insert(rel);
  }
  return VerifyProgram(*p, options);
}

bool HasCode(const std::vector<Diagnostic>& diags, const char* code) {
  for (const auto& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

// -------------------------------------------------------- clean inputs

TEST(VerifierTest, CleanProgramHasNoDiagnostics) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (a > 1).\n"
      "s(x, y) :- r(x), (y = (x * 2)).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, BaseDirectiveDeclaresSchemaAndUniqueness) {
  auto p = tondir::ParseProgram(
      "@base t(id, v) unique(0).\n"
      "r(id, v) :- t(id, v).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->base_columns.count("t"), 1u);
  EXPECT_EQ(p->base_columns["t"],
            (std::vector<std::string>{"id", "v"}));
  EXPECT_EQ(p->relation_info["t"].unique_positions, (std::set<size_t>{0}));
}

// ------------------------------------------------- one test per T-code

TEST(VerifierTest, T001UndefinedRelation) {
  auto diags = Lint("r(a) :- missing(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedRelation))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T001UndefinedRelationInsideExists) {
  // The old Program::Validate blind spot: accesses inside exists(..) were
  // never checked.
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), exists(missing(c)).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedRelation))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T002ArityMismatch) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b, c).");
  EXPECT_TRUE(HasCode(diags, codes::kArityMismatch))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T002ArityInferredAcrossRules) {
  // No schema: arity fixed by the first access, second access disagrees.
  auto diags = Lint(
      "r(a) :- t(a, b).\n"
      "s(x) :- t(x, y, z).",
      {"t"});
  EXPECT_TRUE(HasCode(diags, codes::kArityMismatch))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T003UndefinedHeadVar) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(zz) :- t(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedHeadVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T004UndefinedGroupVar) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) group(a, zz) :- t(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedGroupVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T005ColNamesArityMismatch) {
  auto p = tondir::ParseProgram(
      "@base t(a, b).\n"
      "r(a, b) :- t(a, b).");
  ASSERT_TRUE(p.ok());
  p->rules[0].head.col_names.pop_back();
  VerifyOptions options;
  options.base_relations = {"t"};
  auto diags = VerifyProgram(*p, options);
  EXPECT_TRUE(HasCode(diags, codes::kColNamesArity))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T006UndefinedVarInFilter) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (c > 1).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T006UndefinedVarInAssignmentTerm) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(x) :- t(a, b), (x = (a + nope)).");
  EXPECT_TRUE(HasCode(diags, codes::kUndefinedVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T007ExistsVarLeaksIntoFilter) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c).\n"
      "r(a) :- t(a, b), exists(u(c)), (c > 1).");
  EXPECT_TRUE(HasCode(diags, codes::kExistsLeak))
      << FormatDiagnostics(diags);
  EXPECT_FALSE(HasCode(diags, codes::kUndefinedVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T007ExistsVarLeaksIntoHead) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c).\n"
      "r(c) :- t(a, b), exists(u(c)).");
  EXPECT_TRUE(HasCode(diags, codes::kExistsLeak))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, ExistsMayUseOuterVars) {
  // Correlation the other way round is fine: exists bodies see outer vars.
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c).\n"
      "r(a) :- t(a, b), !exists(u(c), (c = a)).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T008UngroupedHeadVar) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, b) group(a) :- t(a, b), (s = sum(b)).");
  EXPECT_TRUE(HasCode(diags, codes::kUngroupedHeadVar))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T008AllowsExpressionsOverGroupVarsAndAggregates) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, frac) group(a) :- t(a, b), (s = sum(b)), (c = count(b)), "
      "(frac = s / c).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T009NestedAggregate) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, x) group(a) :- t(a, b), (x = sum(sum(b))).");
  EXPECT_TRUE(HasCode(diags, codes::kNestedAggregate))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T010AggregateInFilter) {
  // HAVING-style filters on aggregate results must live in a later rule.
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) group(a) :- t(a, b), (s = sum(b)), (s > 10).");
  EXPECT_TRUE(HasCode(diags, codes::kAggregateOutsideAssignment))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T010AggregateInsideExists) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), exists((x = sum(b))).");
  EXPECT_TRUE(HasCode(diags, codes::kAggregateOutsideAssignment))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T011SortWithoutLimitOnNonSink) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) sort(a asc) :- t(a, b).\n"
      "s(x) :- r(x).");
  EXPECT_TRUE(HasCode(diags, codes::kSortWithoutLimitNotSink))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, TopNOnNonSinkIsAllowed) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) sort(a asc) limit(5) :- t(a, b).\n"
      "s(x) :- r(x).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T012SortKeyNotInHead) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) sort(b desc) :- t(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kSortKeyNotInHead))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T013OuterMarkerOddKeyCount) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c, d).\n"
      "r(a, c) :- t(a, b), u(c, d), @outer_left(a, c, b).");
  EXPECT_TRUE(HasCode(diags, codes::kBadOuterMarker))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T013OuterMarkerNeedsTwoAccesses) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), @outer_left(a, b).");
  EXPECT_TRUE(HasCode(diags, codes::kBadOuterMarker))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, WellFormedOuterJoinIsClean) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "@base u(c, d).\n"
      "r(a, c) :- t(a, b), u(c, d), @outer_left(a, c).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T014UnknownMarkerIsWarningOnly) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), @frobnicate(a).");
  EXPECT_TRUE(HasCode(diags, codes::kUnknownMarker))
      << FormatDiagnostics(diags);
  EXPECT_FALSE(HasErrors(diags)) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T015DeadRuleIsWarningOnly) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "dead(a) :- t(a, b).\n"
      "r(x) :- t(x, y).");
  EXPECT_TRUE(HasCode(diags, codes::kDeadRule)) << FormatDiagnostics(diags);
  EXPECT_FALSE(HasErrors(diags)) << FormatDiagnostics(diags);
}

TEST(VerifierTest, T016RelationRedefined) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b).\n"
      "r(b) :- t(b, c).");
  EXPECT_TRUE(HasCode(diags, codes::kRelationRedefined))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T016RuleShadowsBaseRelation) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "t(a) :- t(a, b).\n"
      "r(x) :- t(x, y).");
  EXPECT_TRUE(HasCode(diags, codes::kRelationRedefined))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T017ConstRelMixedTypes) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (x = [1, \"two\"]), (x = a).");
  EXPECT_TRUE(HasCode(diags, codes::kConstRelHeterogeneous))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T018EmptyConstRel) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (x = []), (x = a).");
  EXPECT_TRUE(HasCode(diags, codes::kConstRelEmpty))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, T019UidWithoutRelationAccess) {
  auto diags = Lint("r(x) :- (x = uid()).");
  EXPECT_TRUE(HasCode(diags, codes::kUidWithoutAccess))
      << FormatDiagnostics(diags);
}

TEST(VerifierTest, UidWithRelationAccessIsClean) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a, x) :- t(a, b), (x = uid()).");
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
}

// ------------------------------------------------------------- options

TEST(VerifierTest, ImplicitBasesSuppressT001AndInferArity) {
  auto diags = Lint("r(a) :- mystery(a, b).", {}, /*implicit_bases=*/true);
  EXPECT_TRUE(diags.empty()) << FormatDiagnostics(diags);
  auto diags2 = Lint("r(a) :- mystery(a, b), mystery(a, b, c).", {},
                     /*implicit_bases=*/true);
  EXPECT_TRUE(HasCode(diags2, codes::kArityMismatch))
      << FormatDiagnostics(diags2);
}

TEST(VerifierTest, DiagnosticRenderingIsStable) {
  auto diags = Lint(
      "@base t(a, b).\n"
      "r(a) :- t(a, b), (c > 1).");
  ASSERT_TRUE(HasCode(diags, codes::kUndefinedVar));
  for (const auto& d : diags) {
    if (d.code == codes::kUndefinedVar) {
      EXPECT_EQ(d.rule_index, 0);
      EXPECT_EQ(d.atom_index, 1);
      EXPECT_NE(d.ToString().find("error[T006]"), std::string::npos)
          << d.ToString();
    }
  }
}

// ----------------------------------------------- Validate thin wrapper

TEST(ValidateWrapperTest, FirstErrorBecomesStatus) {
  auto p = tondir::ParseProgram("r(zz) :- t(a, b).");
  ASSERT_TRUE(p.ok());
  Status s = p->Validate({"t"});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("T003"), std::string::npos) << s.ToString();
}

TEST(ValidateWrapperTest, WarningsDoNotFailValidation) {
  auto p = tondir::ParseProgram(
      "dead(a) :- t(a, b).\n"
      "r(x) :- t(x, y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Validate({"t"}).ok());
}

// --------------------------------------- whole-pipeline integration

class TpchVerifyTest : public ::testing::Test {
 protected:
  static Session* session_;

  static void SetUpTestSuite() {
    session_ = new Session();
    ASSERT_TRUE(workloads::tpch::Populate(&session_->db(), 0.01).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
};

Session* TpchVerifyTest::session_ = nullptr;

/// Every TPC-H query must compile cleanly with post-translation
/// verification AND per-pass verification forced on at full optimization.
TEST_F(TpchVerifyTest, AllQueriesVerifyThroughEveryPass) {
  for (const auto& q : workloads::tpch::AllQueries()) {
    frontend::CompileOptions options;
    options.verify = true;
    options.verify_each_pass = true;
    auto c = frontend::CompileFunction(q.source, session_->db().catalog(),
                                       options);
    EXPECT_TRUE(c.ok()) << q.name << ": " << c.status().ToString();
  }
}

TEST_F(TpchVerifyTest, AllOptimizationLevelsVerify) {
  for (int level = 0; level <= 4; ++level) {
    for (const auto& q : workloads::tpch::AllQueries()) {
      frontend::CompileOptions options;
      options.optimization_level = level;
      options.verify = true;
      options.verify_each_pass = true;
      auto c = frontend::CompileFunction(q.source, session_->db().catalog(),
                                         options);
      EXPECT_TRUE(c.ok()) << q.name << " at O" << level << ": "
                          << c.status().ToString();
    }
  }
}

TEST(DatasciVerifyTest, WorkloadsVerifyThroughEveryPass) {
  Session session;
  ASSERT_TRUE(
      workloads::datasci::PopulateCrimeIndex(&session.db(), 200).ok());
  ASSERT_TRUE(
      workloads::datasci::PopulateBirthAnalysis(&session.db(), 300).ok());
  const struct { const char* name; const char* source; } sources[] = {
      {"CrimeIndex", workloads::datasci::CrimeIndexSource()},
      {"BirthAnalysis", workloads::datasci::BirthAnalysisSource()},
  };
  for (const auto& w : sources) {
    frontend::CompileOptions options;
    options.verify = true;
    options.verify_each_pass = true;
    auto c =
        frontend::CompileFunction(w.source, session.db().catalog(), options);
    EXPECT_TRUE(c.ok()) << w.name << ": " << c.status().ToString();
  }
}

}  // namespace
}  // namespace pytond::analysis
