#include <gtest/gtest.h>

#include "common/date_util.h"
#include "engine/database.h"

namespace pytond::engine {
namespace {

/// Builds a small database with two related tables + one with nulls/dates.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      Table t;
      ASSERT_TRUE(t.AddColumn("id", Column::Int64({1, 2, 3, 4, 5})).ok());
      ASSERT_TRUE(
          t.AddColumn("grp", Column::String({"a", "b", "a", "b", "c"})).ok());
      ASSERT_TRUE(
          t.AddColumn("val", Column::Float64({10, 20, 30, 40, 50})).ok());
      TableConstraints tc;
      tc.primary_key = {"id"};
      ASSERT_TRUE(db_.CreateTable("t", std::move(t), tc).ok());
    }
    {
      Table u;
      ASSERT_TRUE(u.AddColumn("tid", Column::Int64({1, 1, 2, 3, 9})).ok());
      ASSERT_TRUE(
          u.AddColumn("tag", Column::String({"x", "y", "x", "z", "w"})).ok());
      ASSERT_TRUE(db_.CreateTable("u", std::move(u)).ok());
    }
    {
      Table d;
      std::vector<int32_t> dates = {
          *date_util::FromYMD(1994, 1, 1), *date_util::FromYMD(1994, 6, 15),
          *date_util::FromYMD(1995, 3, 1)};
      ASSERT_TRUE(d.AddColumn("when_", Column::Date(dates)).ok());
      Column v = Column::Int64({7, 8, 0});
      v.validity() = {1, 1, 0};
      ASSERT_TRUE(d.AddColumn("amount", std::move(v)).ok());
      ASSERT_TRUE(db_.CreateTable("d", std::move(d)).ok());
    }
  }

  Table Run(const std::string& sql, QueryOptions opts = {}) {
    auto r = db_.Query(sql, opts);
    EXPECT_TRUE(r.ok()) << sql << "\n" << (r.ok() ? "" : r.status().ToString());
    return r.ok() ? **r : Table();
  }

  Database db_;
};

TEST_F(EngineTest, SelectStar) {
  Table r = Run("SELECT * FROM t");
  EXPECT_EQ(r.num_rows(), 5u);
  EXPECT_EQ(r.num_columns(), 3u);
}

TEST_F(EngineTest, ProjectionAndArithmetic) {
  Table r = Run("SELECT id + 1 AS idp, val * 2 AS v2 FROM t WHERE id = 3");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.column(0).Get(0), Value::Int64(4));
  EXPECT_EQ(r.column(1).Get(0), Value::Float64(60.0));
}

TEST_F(EngineTest, FilterComparisons) {
  EXPECT_EQ(Run("SELECT id FROM t WHERE val > 20").num_rows(), 3u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE val >= 20 AND val <= 40").num_rows(),
            3u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE grp <> 'a'").num_rows(), 3u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE val BETWEEN 15 AND 35").num_rows(),
            2u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE id IN (1, 4, 99)").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE id NOT IN (1, 4)").num_rows(), 3u);
}

TEST_F(EngineTest, LikePatterns) {
  Table names;
  ASSERT_TRUE(names
                  .AddColumn("s", Column::String({"PROMO STEEL", "ECO BRASS",
                                                  "PROMO BRASS"}))
                  .ok());
  ASSERT_TRUE(db_.CreateTable("names", std::move(names)).ok());
  EXPECT_EQ(Run("SELECT s FROM names WHERE s LIKE 'PROMO%'").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT s FROM names WHERE s LIKE '%BRASS'").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT s FROM names WHERE s NOT LIKE '%BRASS'").num_rows(),
            1u);
}

TEST_F(EngineTest, InnerJoin) {
  Table r = Run(
      "SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid ORDER BY id, tag");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.column(1).Get(0), Value::String("x"));
  EXPECT_EQ(r.column(1).Get(1), Value::String("y"));
}

TEST_F(EngineTest, ExplicitJoinSyntax) {
  Table r = Run("SELECT t.id FROM t JOIN u ON t.id = u.tid");
  EXPECT_EQ(r.num_rows(), 4u);
}

TEST_F(EngineTest, LeftOuterJoinPadsNulls) {
  Table r = Run(
      "SELECT t.id, u.tag FROM t LEFT JOIN u ON t.id = u.tid ORDER BY id");
  // ids 4,5 unmatched -> null tag; id 1 matches twice.
  EXPECT_EQ(r.num_rows(), 6u);
  int nulls = 0;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    if (!r.column(1).IsValid(i)) ++nulls;
  }
  EXPECT_EQ(nulls, 2);
}

TEST_F(EngineTest, FullOuterJoin) {
  Table r = Run("SELECT t.id, u.tid FROM t FULL JOIN u ON t.id = u.tid");
  // 4 matches + 2 left-unmatched (4,5) + 1 right-unmatched (9).
  EXPECT_EQ(r.num_rows(), 7u);
}

TEST_F(EngineTest, RightOuterJoin) {
  Table r = Run("SELECT t.id, u.tid FROM t RIGHT JOIN u ON t.id = u.tid");
  EXPECT_EQ(r.num_rows(), 5u);  // 4 matches + tid=9 unmatched
  int nulls = 0;
  for (size_t i = 0; i < r.num_rows(); ++i) {
    if (!r.column(0).IsValid(i)) ++nulls;
  }
  EXPECT_EQ(nulls, 1);
}

TEST_F(EngineTest, GroupByAggregates) {
  Table r = Run(
      "SELECT grp, SUM(val) AS s, COUNT(*) AS c, AVG(val) AS a, "
      "MIN(val) AS mn, MAX(val) AS mx FROM t GROUP BY grp ORDER BY grp");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.column(0).Get(0), Value::String("a"));
  EXPECT_EQ(r.column(1).Get(0), Value::Float64(40.0));
  EXPECT_EQ(r.column(2).Get(0), Value::Int64(2));
  EXPECT_EQ(r.column(3).Get(0), Value::Float64(20.0));
  EXPECT_EQ(r.column(4).Get(0), Value::Float64(10.0));
  EXPECT_EQ(r.column(5).Get(0), Value::Float64(30.0));
}

TEST_F(EngineTest, GlobalAggregateOnEmptyInput) {
  Table r = Run("SELECT COUNT(*) AS c, SUM(val) AS s FROM t WHERE id > 100");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.column(0).Get(0), Value::Int64(0));
  EXPECT_TRUE(r.column(1).Get(0).is_null());
}

TEST_F(EngineTest, CountDistinct) {
  Table r = Run("SELECT COUNT(DISTINCT grp) AS g FROM t");
  EXPECT_EQ(r.column(0).Get(0), Value::Int64(3));
}

TEST_F(EngineTest, AggregatesSkipNulls) {
  Table r = Run("SELECT COUNT(amount) AS c, SUM(amount) AS s FROM d");
  EXPECT_EQ(r.column(0).Get(0), Value::Int64(2));
  EXPECT_EQ(r.column(1).Get(0), Value::Int64(15));
}

TEST_F(EngineTest, Having) {
  Table r = Run(
      "SELECT grp, SUM(val) AS s FROM t GROUP BY grp HAVING SUM(val) > 45");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(EngineTest, OrderByDescAndLimit) {
  Table r = Run("SELECT id, val FROM t ORDER BY val DESC LIMIT 2");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.column(0).Get(0), Value::Int64(5));
  EXPECT_EQ(r.column(0).Get(1), Value::Int64(4));
}

TEST_F(EngineTest, Distinct) {
  Table r = Run("SELECT DISTINCT grp FROM t");
  EXPECT_EQ(r.num_rows(), 3u);
}

TEST_F(EngineTest, CaseExpression) {
  Table r = Run(
      "SELECT id, CASE WHEN val > 25 THEN 'hi' ELSE 'lo' END AS lvl "
      "FROM t ORDER BY id");
  EXPECT_EQ(r.column(1).Get(0), Value::String("lo"));
  EXPECT_EQ(r.column(1).Get(4), Value::String("hi"));
}

TEST_F(EngineTest, CaseWithoutElseYieldsNull) {
  Table r = Run(
      "SELECT CASE WHEN val > 45 THEN val END AS v FROM t ORDER BY id");
  EXPECT_FALSE(r.column(0).IsValid(0));
  EXPECT_TRUE(r.column(0).IsValid(4));
}

TEST_F(EngineTest, DateLiteralsAndExtract) {
  Table r = Run(
      "SELECT EXTRACT(YEAR FROM when_) AS y FROM d "
      "WHERE when_ >= DATE '1994-01-01' AND when_ < DATE '1995-01-01'");
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.column(0).Get(0), Value::Int64(1994));
  // Hyper-style spelling.
  Table r2 = Run("SELECT year(when_) AS y FROM d WHERE year(when_) = 1995");
  EXPECT_EQ(r2.num_rows(), 1u);
}

TEST_F(EngineTest, IsNullPredicates) {
  EXPECT_EQ(Run("SELECT amount FROM d WHERE amount IS NULL").num_rows(), 1u);
  EXPECT_EQ(Run("SELECT amount FROM d WHERE amount IS NOT NULL").num_rows(),
            2u);
}

TEST_F(EngineTest, CteChain) {
  Table r = Run(
      "WITH big(id, val) AS (SELECT id, val FROM t WHERE val > 15), "
      "sums(s) AS (SELECT SUM(val) FROM big) "
      "SELECT s FROM sums");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.column(0).Get(0), Value::Float64(140.0));
}

TEST_F(EngineTest, CteSelfJoin) {
  Table r = Run(
      "WITH v(id, val) AS (SELECT id, val FROM t) "
      "SELECT r1.id FROM v AS r1, v AS r2 WHERE r1.id = r2.id");
  EXPECT_EQ(r.num_rows(), 5u);
}

TEST_F(EngineTest, ValuesCte) {
  Table r = Run(
      "WITH nums(c0) AS (VALUES (0), (1), (2)) SELECT c0 FROM nums");
  EXPECT_EQ(r.num_rows(), 3u);
}

TEST_F(EngineTest, InlineValuesFromClause) {
  Table r = Run(
      "SELECT t.id, v.c0 FROM t, (VALUES (1), (2)) AS v(c0) "
      "WHERE t.id = v.c0");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(EngineTest, ExistsSemiJoin) {
  Table r = Run(
      "SELECT id FROM t WHERE EXISTS "
      "(SELECT 1 FROM u WHERE u.tid = t.id)");
  EXPECT_EQ(r.num_rows(), 3u);  // ids 1,2,3
}

TEST_F(EngineTest, NotExistsAntiJoin) {
  Table r = Run(
      "SELECT id FROM t WHERE NOT EXISTS "
      "(SELECT 1 FROM u WHERE u.tid = t.id)");
  EXPECT_EQ(r.num_rows(), 2u);  // ids 4,5
}

TEST_F(EngineTest, ExistsWithResidualPredicate) {
  // Match only when tag <> 'x': id 1 (tag y) and id 3 (tag z) pass.
  Table r = Run(
      "SELECT id FROM t WHERE EXISTS "
      "(SELECT 1 FROM u WHERE u.tid = t.id AND u.tag <> 'x')");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(EngineTest, InSubquery) {
  Table r = Run("SELECT id FROM t WHERE id IN (SELECT tid FROM u)");
  EXPECT_EQ(r.num_rows(), 3u);
  Table r2 = Run("SELECT id FROM t WHERE id NOT IN (SELECT tid FROM u)");
  EXPECT_EQ(r2.num_rows(), 2u);
}

TEST_F(EngineTest, WindowRowNumber) {
  Table r = Run(
      "SELECT id, row_number() OVER (ORDER BY val DESC) AS rn FROM t");
  ASSERT_EQ(r.num_rows(), 5u);
  // Output keeps input order; id=5 (val 50) gets rn 1.
  EXPECT_EQ(r.column(0).Get(4), Value::Int64(5));
  EXPECT_EQ(r.column(1).Get(4), Value::Int64(1));
  EXPECT_EQ(r.column(1).Get(0), Value::Int64(5));
}

TEST_F(EngineTest, ResearchProfileRejectsWindows) {
  QueryOptions opts;
  opts.profile = BackendProfile::kResearch;
  auto r = db_.Query(
      "SELECT row_number() OVER (ORDER BY id) AS rn FROM t", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(EngineTest, CastStringToDateMatchesDateLiteral) {
  // The Hyper-dialect codegen spells date constants CAST('...' AS date);
  // it must parse (DATE is a reserved keyword) and compare equal to the
  // DATE literal form.
  Table a = Run("SELECT amount FROM d WHERE when_ < DATE '1994-06-15'");
  Table b =
      Run("SELECT amount FROM d WHERE when_ < CAST('1994-06-15' AS date)");
  ASSERT_EQ(a.num_rows(), 1u);
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(a, b, 0.0, &diff)) << diff;
  // Malformed date strings fail the cast rather than silently truncating.
  EXPECT_FALSE(
      db_.Query("SELECT CAST('not-a-date' AS date) AS x FROM d").ok());
}

TEST_F(EngineTest, CompiledProfileSameResults) {
  QueryOptions opts;
  opts.profile = BackendProfile::kCompiled;
  Table a = Run("SELECT grp, SUM(val) AS s FROM t, u WHERE t.id = u.tid "
                "GROUP BY grp ORDER BY grp");
  Table b = Run(
      "SELECT grp, SUM(val) AS s FROM t, u WHERE t.id = u.tid "
      "GROUP BY grp ORDER BY grp",
      opts);
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(a, b, 1e-9, &diff)) << diff;
}

TEST_F(EngineTest, MultiThreadedSameResults) {
  QueryOptions opts;
  opts.num_threads = 4;
  Table a = Run("SELECT grp, SUM(val) AS s FROM t GROUP BY grp");
  Table b = Run("SELECT grp, SUM(val) AS s FROM t GROUP BY grp", opts);
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(a, b, 1e-9, &diff)) << diff;
}

TEST_F(EngineTest, CrossJoin) {
  Table r = Run("SELECT t.id, u.tid FROM t CROSS JOIN u");
  EXPECT_EQ(r.num_rows(), 25u);
}

TEST_F(EngineTest, DivisionByZeroYieldsNull) {
  Table r = Run("SELECT val / (id - 1) AS q FROM t ORDER BY id");
  EXPECT_FALSE(r.column(0).IsValid(0));
  EXPECT_TRUE(r.column(0).IsValid(1));
}

TEST_F(EngineTest, ScalarFunctions) {
  Table r = Run(
      "SELECT round(val / 3, 1) AS r1, abs(0 - id) AS a, "
      "substr(grp, 1, 1) AS s FROM t WHERE id = 1");
  EXPECT_EQ(r.column(0).Get(0), Value::Float64(3.3));
  EXPECT_EQ(r.column(1).Get(0), Value::Int64(1));
  EXPECT_EQ(r.column(2).Get(0), Value::String("a"));
}

TEST_F(EngineTest, ParseErrorsSurface) {
  EXPECT_FALSE(db_.Query("SELEC * FROM t").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(db_.Query("SELECT nosuchcol FROM t").ok());
}

TEST_F(EngineTest, ExplainShowsPlan) {
  auto r = db_.ExplainQuery("SELECT id FROM t WHERE val > 20");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("Scan(t)"), std::string::npos);
  EXPECT_NE(r->find("Filter"), std::string::npos);
}

}  // namespace
}  // namespace pytond::engine
