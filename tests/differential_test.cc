// Differential oracle for the morsel-driven scheduler: every TPC-H query
// and data-science workload must produce the same result through the
// compiled SQL path at threads ∈ {1, 2, 4} as through the eager runtime —
// and the parallel runs must agree with each other exactly, because morsel
// boundaries depend only on the input size, never on the thread count.
// Thread-count determinism is a checked invariant, not an accident.

#include <gtest/gtest.h>

#include <map>

#include "core/session.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

class DifferentialTest : public ::testing::Test {
 protected:
  static Session* session_;

  static void SetUpTestSuite() {
    session_ = new Session();
    // Sizes chosen to clear ExecContext::min_parallel_rows so the
    // parallel operators actually split (see PoolEngaged below).
    ASSERT_TRUE(workloads::tpch::Populate(&session_->db(), 0.01).ok());
    ASSERT_TRUE(
        workloads::datasci::PopulateCrimeIndex(&session_->db(), 6000).ok());
    ASSERT_TRUE(
        workloads::datasci::PopulateBirthAnalysis(&session_->db(), 6000)
            .ok());
    ASSERT_TRUE(workloads::datasci::PopulateN3(&session_->db(), 6000).ok());
    ASSERT_TRUE(workloads::datasci::PopulateN9(&session_->db(), 6000).ok());
    ASSERT_TRUE(
        workloads::datasci::PopulateHybrid(&session_->db(), 6000).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  /// Eager runtime is the oracle; the compiled path must match it at every
  /// (pipeline mode, thread count) combination, and within each mode the
  /// parallel thread counts must match each other bit-for-bit (same morsel
  /// decomposition, same merge order). The two execution strategies share
  /// every kernel and every merge order, so their single-threaded runs
  /// must also agree exactly — a pipelined chain of streaming operators is
  /// not allowed to change a single bit of any result.
  static void CheckDifferential(const std::string& source,
                                const std::string& name) {
    auto baseline = session_->RunBaseline(source);
    ASSERT_TRUE(baseline.ok()) << name << ": "
                               << baseline.status().ToString();
    std::map<std::pair<bool, int>, std::shared_ptr<const Table>> results;
    for (bool pipeline : {false, true}) {
      for (int threads : kThreadCounts) {
        RunOptions o;
        o.num_threads = threads;
        o.pipeline = pipeline;
        auto r = session_->Run(source, o);
        ASSERT_TRUE(r.ok()) << name << " pipeline=" << pipeline
                            << " threads=" << threads << ": "
                            << r.status().ToString();
        std::string diff;
        EXPECT_TRUE(Table::UnorderedEquals(**r, *baseline, 1e-6, &diff))
            << name << " pipeline=" << pipeline << " threads=" << threads
            << " vs eager: " << diff;
        results[{pipeline, threads}] = *r;
      }
      std::string diff;
      // Parallel runs share one chunking: exact equality, zero tolerance.
      EXPECT_TRUE(Table::UnorderedEquals(*results[{pipeline, 2}],
                                         *results[{pipeline, 4}], 0.0,
                                         &diff))
          << name << " pipeline=" << pipeline
          << " threads=2 vs threads=4 not identical: " << diff;
      // Inline (1 chunk) vs morsel-merged float reassociation only.
      EXPECT_TRUE(Table::UnorderedEquals(*results[{pipeline, 1}],
                                         *results[{pipeline, 2}], 1e-9,
                                         &diff))
          << name << " pipeline=" << pipeline
          << " threads=1 vs threads=2: " << diff;
    }
    // Cross-strategy: a single chunk flows through identical kernels in
    // identical order either way — bit-exact, zero tolerance.
    std::string diff;
    EXPECT_TRUE(Table::UnorderedEquals(*results[{false, 1}],
                                       *results[{true, 1}], 0.0, &diff))
        << name << " pipelined threads=1 differs from materializing: "
        << diff;
  }
};

Session* DifferentialTest::session_ = nullptr;

class TpchDifferentialTest : public DifferentialTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(TpchDifferentialTest, CompiledAgreesWithEagerAtAllThreadCounts) {
  const auto& q = workloads::tpch::GetQuery(GetParam());
  CheckDifferential(q.source, q.name);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchDifferentialTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST_F(DifferentialTest, CrimeIndex) {
  CheckDifferential(workloads::datasci::CrimeIndexSource(), "CrimeIndex");
}

TEST_F(DifferentialTest, BirthAnalysis) {
  CheckDifferential(workloads::datasci::BirthAnalysisSource(),
                    "BirthAnalysis");
}

TEST_F(DifferentialTest, N3) {
  CheckDifferential(workloads::datasci::N3Source(), "N3");
}

TEST_F(DifferentialTest, N9) {
  CheckDifferential(workloads::datasci::N9Source(), "N9");
}

TEST_F(DifferentialTest, HybridMatMul) {
  CheckDifferential(workloads::datasci::HybridMatMulSource(false),
                    "HybridMatMul");
}

TEST_F(DifferentialTest, HybridMatMulFiltered) {
  CheckDifferential(workloads::datasci::HybridMatMulSource(true),
                    "HybridMatMulFiltered");
}

TEST_F(DifferentialTest, HybridCovar) {
  CheckDifferential(workloads::datasci::HybridCovarSource(false),
                    "HybridCovar");
}

TEST_F(DifferentialTest, HybridCovarFiltered) {
  CheckDifferential(workloads::datasci::HybridCovarSource(true),
                    "HybridCovarFiltered");
}

/// Serve-path acceptance: PREPARE + EXECUTE (auto-parameterized plan,
/// parse-time parameter binding) must be bitwise-identical to ad-hoc
/// Session::Run for every workload at every thread count. Parameters are
/// typed opaque terms to the optimizer, so this differential is what
/// proves no value-dependent pass ever specialized a prepared plan —
/// zero tolerance, including the queries that fall back to the literal
/// path because nothing was parameterizable.
TEST_F(DifferentialTest, PreparedExecuteMatchesAdHocEverywhere) {
  std::vector<std::pair<std::string, std::string>> workloads;
  for (int q = 1; q <= 22; ++q) {
    const auto& spec = workloads::tpch::GetQuery(q);
    workloads.emplace_back(spec.name, spec.source);
  }
  workloads.emplace_back("CrimeIndex", workloads::datasci::CrimeIndexSource());
  workloads.emplace_back("BirthAnalysis",
                         workloads::datasci::BirthAnalysisSource());
  workloads.emplace_back("N3", workloads::datasci::N3Source());
  workloads.emplace_back("N9", workloads::datasci::N9Source());
  workloads.emplace_back("HybridMatMul",
                         workloads::datasci::HybridMatMulSource(false));
  workloads.emplace_back("HybridMatMulFiltered",
                         workloads::datasci::HybridMatMulSource(true));
  workloads.emplace_back("HybridCovar",
                         workloads::datasci::HybridCovarSource(false));
  workloads.emplace_back("HybridCovarFiltered",
                         workloads::datasci::HybridCovarSource(true));
  ASSERT_EQ(workloads.size(), 30u);

  for (const auto& [name, source] : workloads) {
    for (int threads : kThreadCounts) {
      RunOptions o;
      o.num_threads = threads;
      auto ps = session_->Prepare(source, o);
      ASSERT_TRUE(ps.ok()) << name << ": " << ps.status().ToString();
      auto prepared = ps->Execute();
      ASSERT_TRUE(prepared.ok())
          << name << " threads=" << threads << " prepared: "
          << prepared.status().ToString();
      auto adhoc = session_->Run(source, o);
      ASSERT_TRUE(adhoc.ok()) << name << " threads=" << threads
                              << " ad-hoc: " << adhoc.status().ToString();
      std::string diff;
      EXPECT_TRUE(Table::UnorderedEquals(**prepared, **adhoc, 0.0, &diff))
          << name << " threads=" << threads
          << " prepared vs ad-hoc not bitwise equal: " << diff;
    }
  }
}

/// Guards the whole suite against vacuity: the parallel runs above must
/// actually have executed morsels on the shared pool — otherwise every
/// "agreement" assertion silently degenerated to inline execution.
TEST_F(DifferentialTest, PoolEngaged) {
  RunOptions o;
  o.num_threads = 4;
  auto r = session_->Run(workloads::tpch::GetQuery(1).source, o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto* pool = session_->db().pool_if_created();
  ASSERT_NE(pool, nullptr) << "no parallel query ever reached the pool";
  EXPECT_EQ(pool->num_workers(), 3);  // num_threads - 1, caller helps
  EXPECT_GT(pool->total_morsels(), 0u);
  EXPECT_GT(pool->total_runs(), 0u);
}

}  // namespace
}  // namespace pytond
