// Unit tests for push-based pipelined execution (DESIGN.md §13):
//  - PipelineBuilder decomposition over hand-built plan trees — breaker
//    placement, dependency edges, source/sink assignment — asserted as
//    pure structure (BuildPipelines never executes anything).
//  - Morsel boundary math as a property test: random row counts × thread
//    counts × morsel sizes, every row covered exactly once, boundaries a
//    function of n alone (the thread-count determinism invariant), for
//    both the ParallelFor loop the materializing operators use and the
//    pipeline runtime's source partitioning (they share it).
//  - Pipeline-on vs pipeline-off parity over the SQL surface the
//    streaming operators cover: every join type, NULL keys, empty build
//    and probe sides, fully-filtered morsels, stacked breakers.
//  - A vacuity guard: parallel pipelined runs must actually record
//    "pipeline" spans with morsels executed, so the parity sweep above
//    can't silently degenerate to the materializing path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/exec/pipeline.h"
#include "obs/trace.h"

namespace pytond::engine {
namespace {

// ===================================================================
// Hand-built plan trees (decomposition is pure structure: BuildPipelines
// inspects node kinds and join shape, never expressions).
// ===================================================================

Schema OneCol() {
  Schema s;
  s.Add("x", DataType::kInt64);
  return s;
}

PlanPtr ScanNode(const std::string& name) {
  PlanPtr p = MakePlan(LogicalPlan::Kind::kScan);
  p->table_name = name;
  p->schema = OneCol();
  return p;
}

PlanPtr UnaryNode(LogicalPlan::Kind kind, PlanPtr child) {
  PlanPtr p = MakePlan(kind);
  p->schema = child->schema;
  p->children = {std::move(child)};
  return p;
}

PlanPtr FilterNode(PlanPtr child) {
  return UnaryNode(LogicalPlan::Kind::kFilter, std::move(child));
}

PlanPtr ProjectNode(PlanPtr child) {
  return UnaryNode(LogicalPlan::Kind::kProject, std::move(child));
}

PlanPtr AggNode(PlanPtr child) {
  return UnaryNode(LogicalPlan::Kind::kAggregate, std::move(child));
}

PlanPtr SortNode(PlanPtr child) {
  return UnaryNode(LogicalPlan::Kind::kSort, std::move(child));
}

PlanPtr JoinNode(PlanPtr l, PlanPtr r, JoinType jt, bool build_left = false) {
  PlanPtr p = MakePlan(LogicalPlan::Kind::kJoin);
  p->schema = l->schema;
  p->join_type = jt;
  p->build_left = build_left;
  p->children = {std::move(l), std::move(r)};
  return p;
}

/// Structural invariants every decomposition must satisfy: dependencies
/// point strictly backwards (index order is a valid schedule), exactly
/// one morsel source per streaming pipeline, ops and build inputs stay
/// parallel, and the last pipeline produces the root's output.
void CheckInvariants(const PipelinePlan& pp, const LogicalPlan* root) {
  ASSERT_FALSE(pp.pipelines.empty());
  for (const PipelineDesc& d : pp.pipelines) {
    EXPECT_EQ(d.id, &d - pp.pipelines.data());
    EXPECT_EQ(d.ops.size(), d.op_build_inputs.size());
    for (int dep : d.deps) {
      EXPECT_GE(dep, 0);
      EXPECT_LT(dep, d.id);
    }
    if (d.sink == PipelineSinkKind::kCompute) {
      EXPECT_EQ(d.source, nullptr);
      EXPECT_TRUE(d.ops.empty());
    } else {
      // A scan/values leaf XOR another pipeline's output feeds morsels.
      EXPECT_NE(d.source != nullptr, d.source_pipeline >= 0);
    }
    EXPECT_NE(d.output, nullptr);
  }
  EXPECT_EQ(pp.pipelines.back().output, root);
}

TEST(PipelineBuilderTest, ScanFilterAggregateIsOnePipeline) {
  PlanPtr plan = AggNode(FilterNode(ScanNode("t")));
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 1u);
  const PipelineDesc& d = pp.pipelines[0];
  EXPECT_EQ(d.source, plan->children[0]->children[0].get());
  ASSERT_EQ(d.ops.size(), 1u);
  EXPECT_EQ(d.ops[0], plan->children[0].get());
  EXPECT_EQ(d.breaker, plan.get());
  EXPECT_EQ(d.sink, PipelineSinkKind::kAggregate);
  EXPECT_TRUE(d.deps.empty());
}

TEST(PipelineBuilderTest, BareScanIsAResultPassthrough) {
  PlanPtr plan = ScanNode("t");
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 1u);
  EXPECT_EQ(pp.pipelines[0].source, plan.get());
  EXPECT_TRUE(pp.pipelines[0].ops.empty());
  EXPECT_EQ(pp.pipelines[0].sink, PipelineSinkKind::kResult);
  EXPECT_EQ(pp.pipelines[0].breaker, nullptr);
}

TEST(PipelineBuilderTest, SortGetsASerialSink) {
  PlanPtr plan = SortNode(ProjectNode(ScanNode("t")));
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 1u);
  EXPECT_EQ(pp.pipelines[0].sink, PipelineSinkKind::kSerial);
  EXPECT_EQ(pp.pipelines[0].breaker, plan.get());
  ASSERT_EQ(pp.pipelines[0].ops.size(), 1u);
  EXPECT_EQ(pp.pipelines[0].ops[0], plan->children[0].get());
}

TEST(PipelineBuilderTest, JoinBuildSideBecomesDependencyPipeline) {
  // inner join, default build side = right child (filter over scan).
  PlanPtr plan = JoinNode(ScanNode("probe"), FilterNode(ScanNode("build")),
                          JoinType::kInner);
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 2u);
  const PipelineDesc& build = pp.pipelines[0];
  const PipelineDesc& probe = pp.pipelines[1];
  // Build pipeline materializes the right child (filtered scan).
  EXPECT_EQ(build.output, plan->children[1].get());
  EXPECT_EQ(build.sink, PipelineSinkKind::kResult);
  ASSERT_EQ(build.ops.size(), 1u);
  // Probe pipeline streams the left child straight through the join.
  EXPECT_EQ(probe.source, plan->children[0].get());
  ASSERT_EQ(probe.ops.size(), 1u);
  EXPECT_EQ(probe.ops[0], plan.get());
  EXPECT_EQ(probe.op_build_inputs[0], build.id);
  EXPECT_EQ(probe.deps, std::vector<int>{build.id});
}

TEST(PipelineBuilderTest, BuildLeftInnerJoinStreamsTheRightChild) {
  PlanPtr plan = JoinNode(ScanNode("small"), ScanNode("big"),
                          JoinType::kInner, /*build_left=*/true);
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 2u);
  EXPECT_EQ(pp.pipelines[0].output, plan->children[0].get());  // build=left
  EXPECT_EQ(pp.pipelines[1].source, plan->children[1].get());  // probe=right
}

TEST(PipelineBuilderTest, RightJoinBuildsOnTheLeftChild) {
  PlanPtr plan = JoinNode(ScanNode("l"), ScanNode("r"), JoinType::kRight);
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 2u);
  EXPECT_EQ(pp.pipelines[0].output, plan->children[0].get());
  EXPECT_EQ(pp.pipelines[1].source, plan->children[1].get());
}

TEST(PipelineBuilderTest, ThreeWayJoinChainsBothProbesInOnePipeline) {
  // join(join(a, b), c): both probes stream in a single pipeline — a's
  // morsels pass through two probe ops with zero intermediates.
  PlanPtr inner = JoinNode(ScanNode("a"), ScanNode("b"), JoinType::kInner);
  const LogicalPlan* inner_raw = inner.get();
  PlanPtr plan = JoinNode(std::move(inner), ScanNode("c"), JoinType::kInner);
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 3u);
  // Outer build (c) is planned before the probe chain recurses, then the
  // inner build (b); the probe pipeline is last.
  EXPECT_EQ(pp.pipelines[0].output, plan->children[1].get());
  EXPECT_EQ(pp.pipelines[1].output, inner_raw->children[1].get());
  const PipelineDesc& probe = pp.pipelines[2];
  EXPECT_EQ(probe.source, inner_raw->children[0].get());
  ASSERT_EQ(probe.ops.size(), 2u);
  EXPECT_EQ(probe.ops[0], inner_raw);
  EXPECT_EQ(probe.ops[1], plan.get());
  EXPECT_EQ(probe.op_build_inputs[0], 1);
  EXPECT_EQ(probe.op_build_inputs[1], 0);
}

TEST(PipelineBuilderTest, AggregateBelowJoinShapedLikeQ20) {
  // Q20's core shape: the build side is itself an aggregate pipeline
  // (grouped sums over a filtered lineitem), probed by a supplier scan,
  // with trailing filter+project streaming in the probe pipeline.
  PlanPtr agg = AggNode(FilterNode(ScanNode("lineitem")));
  const LogicalPlan* agg_raw = agg.get();
  PlanPtr join = JoinNode(ScanNode("supplier"), std::move(agg),
                          JoinType::kSemi);
  const LogicalPlan* join_raw = join.get();
  PlanPtr plan = ProjectNode(FilterNode(std::move(join)));
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 2u);
  const PipelineDesc& build = pp.pipelines[0];
  EXPECT_EQ(build.breaker, agg_raw);
  EXPECT_EQ(build.sink, PipelineSinkKind::kAggregate);
  ASSERT_EQ(build.ops.size(), 1u);  // the lineitem filter streams

  const PipelineDesc& probe = pp.pipelines[1];
  EXPECT_EQ(probe.source, join_raw->children[0].get());
  ASSERT_EQ(probe.ops.size(), 3u);  // probe, filter, project — all fused
  EXPECT_EQ(probe.ops[0], join_raw);
  EXPECT_EQ(probe.op_build_inputs[0], build.id);
  EXPECT_EQ(probe.breaker, nullptr);
  EXPECT_EQ(probe.sink, PipelineSinkKind::kResult);
}

TEST(PipelineBuilderTest, StackedBreakersChainThroughSourcePipelines) {
  PlanPtr plan = SortNode(AggNode(ScanNode("t")));
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 2u);
  EXPECT_EQ(pp.pipelines[0].sink, PipelineSinkKind::kAggregate);
  const PipelineDesc& serial = pp.pipelines[1];
  EXPECT_EQ(serial.source, nullptr);
  EXPECT_EQ(serial.source_pipeline, 0);
  EXPECT_TRUE(serial.ops.empty());
  EXPECT_EQ(serial.sink, PipelineSinkKind::kSerial);
  EXPECT_EQ(serial.deps, std::vector<int>{0});
}

TEST(PipelineBuilderTest, CrossJoinFallsBackToComputeSink) {
  PlanPtr plan = JoinNode(ScanNode("l"), FilterNode(ScanNode("r")),
                          JoinType::kCross);
  PipelinePlan pp = BuildPipelines(*plan);
  CheckInvariants(pp, plan.get());

  ASSERT_EQ(pp.pipelines.size(), 3u);
  const PipelineDesc& compute = pp.pipelines[2];
  EXPECT_EQ(compute.sink, PipelineSinkKind::kCompute);
  EXPECT_EQ(compute.breaker, plan.get());
  EXPECT_EQ(compute.inputs, (std::vector<int>{0, 1}));
  EXPECT_EQ(compute.deps, (std::vector<int>{0, 1}));
}

// ===================================================================
// Morsel boundary math: the partitioning both execution strategies
// share. Property-tested over random row counts, thread counts, and
// morsel sizes.
// ===================================================================

/// Deterministic xorshift so failures reproduce.
struct Rng {
  uint64_t s = 0x9e3779b97f4a7c15ull;
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

TEST(MorselMathTest, EveryRowExactlyOnce) {
  Rng rng;
  for (int iter = 0; iter < 60; ++iter) {
    size_t n = rng.Next() % 100000;
    size_t morsel_rows = 1 + rng.Next() % 30000;
    for (int threads : {1, 2, 4, 8}) {
      ExecContext ctx;
      ctx.num_threads = threads;
      ctx.morsel_rows = morsel_rows;
      std::vector<std::atomic<uint32_t>> hits(n);
      std::atomic<uint64_t> chunks{0};
      sched::PoolRunStats ps =
          ParallelFor(n, ctx, [&](size_t, size_t begin, size_t end) {
            ASSERT_LE(begin, end);
            ASSERT_LE(end, n);
            for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
            chunks.fetch_add(1);
          });
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " morsel_rows=" + std::to_string(morsel_rows) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(ps.morsels, NumMorsels(n, ctx));
      if (n > 0) {
        EXPECT_EQ(chunks.load(), NumMorsels(n, ctx));
      }
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "row " << i;
      }
    }
  }
}

TEST(MorselMathTest, BoundariesDependOnlyOnRowCount) {
  Rng rng;
  for (int iter = 0; iter < 60; ++iter) {
    size_t n = rng.Next() % 200000;
    std::vector<std::vector<std::pair<size_t, size_t>>> per_threads;
    for (int threads : {2, 4, 8}) {
      ExecContext ctx;
      ctx.num_threads = threads;
      std::vector<std::pair<size_t, size_t>> bounds(
          NumMorsels(n, ctx), {0, 0});
      ParallelFor(n, ctx, [&](size_t morsel, size_t begin, size_t end) {
        bounds[morsel] = {begin, end};
      });
      // Contiguous ascending cover of [0, n).
      for (size_t m = 0; m + 1 < bounds.size(); ++m) {
        EXPECT_EQ(bounds[m].second, bounds[m + 1].first);
      }
      if (!bounds.empty()) {
        EXPECT_EQ(bounds.front().first, 0u);
        EXPECT_EQ(bounds.back().second, n);
      }
      per_threads.push_back(std::move(bounds));
    }
    // The determinism invariant: identical chunking at t=2, t=4, t=8.
    EXPECT_EQ(per_threads[0], per_threads[1]) << "n=" << n;
    EXPECT_EQ(per_threads[1], per_threads[2]) << "n=" << n;
  }
}

TEST(MorselMathTest, SmallOrSerialInputsRunInline) {
  ExecContext ctx;
  ctx.num_threads = 1;
  EXPECT_EQ(NumMorsels(1000000, ctx), 1u);  // serial: never split
  ctx.num_threads = 8;
  EXPECT_EQ(NumMorsels(0, ctx), 1u);
  EXPECT_EQ(NumMorsels(ctx.min_parallel_rows - 1, ctx), 1u);
  EXPECT_GT(NumMorsels(ctx.min_parallel_rows * 4, ctx), 1u);
}

// ===================================================================
// Pipeline-on vs pipeline-off parity over the streaming SQL surface.
// ===================================================================

class PipelineParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      // l.k has a NULL and keys with zero / one / many matches in r.
      Table l;
      Column k = Column::Int64({1, 2, 2, 3, 5, 0});
      k.validity() = {1, 1, 1, 1, 1, 0};
      ASSERT_TRUE(l.AddColumn("k", std::move(k)).ok());
      ASSERT_TRUE(
          l.AddColumn("lv", Column::Int64({10, 20, 21, 30, 50, 60})).ok());
      ASSERT_TRUE(db_.CreateTable("l", std::move(l)).ok());
    }
    {
      Table r;
      Column k = Column::Int64({2, 3, 3, 4, 0});
      k.validity() = {1, 1, 1, 1, 0};
      ASSERT_TRUE(r.AddColumn("k", std::move(k)).ok());
      ASSERT_TRUE(
          r.AddColumn("rv", Column::Int64({200, 300, 301, 400, 500})).ok());
      ASSERT_TRUE(db_.CreateTable("r", std::move(r)).ok());
    }
    {
      Table e;
      ASSERT_TRUE(e.AddColumn("k", Column::Int64({})).ok());
      ASSERT_TRUE(e.AddColumn("ev", Column::Int64({})).ok());
      ASSERT_TRUE(db_.CreateTable("empty", std::move(e)).ok());
    }
    {
      // Big enough to clear min_parallel_rows so parallel runs split.
      std::vector<int64_t> v(20000), g(20000);
      for (size_t i = 0; i < v.size(); ++i) {
        v[i] = static_cast<int64_t>(i);
        g[i] = static_cast<int64_t>(i % 7);
      }
      Table b;
      ASSERT_TRUE(b.AddColumn("v", Column::Int64(std::move(v))).ok());
      ASSERT_TRUE(b.AddColumn("g", Column::Int64(std::move(g))).ok());
      ASSERT_TRUE(db_.CreateTable("big", std::move(b)).ok());
    }
  }

  /// Runs `sql` pipelined and materializing at threads {1, 2, 4}; every
  /// combination must agree (values exactly; row order is free across
  /// strategies for multi-chunk outer joins, so compare unordered).
  void CheckParity(const std::string& sql) {
    QueryOptions off;
    off.pipeline = false;
    auto oracle = db_.Query(sql, off);
    ASSERT_TRUE(oracle.ok()) << sql << "\n" << oracle.status().ToString();
    for (int threads : {1, 2, 4}) {
      for (bool pipeline : {false, true}) {
        QueryOptions o;
        o.num_threads = threads;
        o.pipeline = pipeline;
        auto got = db_.Query(sql, o);
        ASSERT_TRUE(got.ok()) << sql << "\n" << got.status().ToString();
        std::string diff;
        EXPECT_TRUE(Table::UnorderedEquals(**got, **oracle, 0.0, &diff))
            << sql << "\npipeline=" << pipeline << " threads=" << threads
            << ": " << diff;
      }
    }
  }

  Database db_;
};

TEST_F(PipelineParityTest, AllJoinTypes) {
  CheckParity("SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k");
  CheckParity("SELECT l.lv, r.rv FROM l LEFT JOIN r ON l.k = r.k");
  CheckParity("SELECT l.lv, r.rv FROM l RIGHT JOIN r ON l.k = r.k");
  CheckParity("SELECT l.lv, r.rv FROM l FULL JOIN r ON l.k = r.k");
  CheckParity("SELECT l.lv FROM l WHERE l.k IN (SELECT r.k FROM r)");
  CheckParity("SELECT l.lv FROM l WHERE l.k NOT IN (SELECT r.k FROM r)");
  CheckParity("SELECT l.lv, r.rv FROM l CROSS JOIN r");
}

TEST_F(PipelineParityTest, EmptyBuildAndProbeSides) {
  CheckParity("SELECT l.lv, empty.ev FROM l JOIN empty ON l.k = empty.k");
  CheckParity("SELECT empty.ev, r.rv FROM empty JOIN r ON empty.k = r.k");
  CheckParity(
      "SELECT l.lv, empty.ev FROM l LEFT JOIN empty ON l.k = empty.k");
  CheckParity(
      "SELECT empty.ev, r.rv FROM empty FULL JOIN r ON empty.k = r.k");
  CheckParity("SELECT SUM(ev) AS s, COUNT(*) AS c FROM empty");
}

TEST_F(PipelineParityTest, FullyFilteredMorselsReachTheSinkSafely) {
  // Predicate kills every row; downstream expressions (including LIKE
  // over a constant pattern) must tolerate zero-lane chunks.
  CheckParity(
      "SELECT SUM(v) AS s FROM big WHERE v < 0 GROUP BY g");
  CheckParity("SELECT COUNT(*) AS c, SUM(v) AS s FROM big WHERE v < 0");
}

TEST_F(PipelineParityTest, StreamedAggAndStackedBreakers) {
  CheckParity(
      "SELECT g, COUNT(*) AS c, SUM(v) AS s FROM big "
      "WHERE v % 3 = 0 GROUP BY g ORDER BY g");
  CheckParity("SELECT DISTINCT g FROM big ORDER BY g");
  CheckParity("SELECT v FROM big ORDER BY v LIMIT 17");
}

/// Exactly-once row coverage end-to-end through the pipeline runtime:
/// COUNT/SUM over sizes chosen to straddle the inline/parallel switch and
/// morsel boundaries. Any dropped or doubled morsel changes the count.
TEST_F(PipelineParityTest, PipelinePartitionCountsEveryRowOnce) {
  Rng rng;
  std::vector<size_t> sizes = {0, 1, 4095, 4096, 4097, 16384, 50000};
  for (int i = 0; i < 4; ++i) sizes.push_back(rng.Next() % 60000);
  for (size_t idx = 0; idx < sizes.size(); ++idx) {
    size_t n = sizes[idx];
    std::vector<int64_t> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<int64_t>(i);
    Table t;
    ASSERT_TRUE(t.AddColumn("v", Column::Int64(std::move(v))).ok());
    std::string name = "p" + std::to_string(idx);
    ASSERT_TRUE(db_.CreateTable(name, std::move(t)).ok());
    int64_t want_sum =
        n == 0 ? 0 : static_cast<int64_t>(n * (n - 1) / 2);
    for (int threads : {1, 2, 4}) {
      QueryOptions o;
      o.num_threads = threads;
      o.pipeline = true;
      auto r = db_.Query(
          "SELECT COUNT(*) AS c, SUM(v) AS s FROM " + name, o);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ((*r)->num_rows(), 1u);
      EXPECT_EQ((*r)->column(0).Get(0).AsInt64(), static_cast<int64_t>(n))
          << name << " threads=" << threads;
      if (n > 0) {
        EXPECT_EQ((*r)->column(1).Get(0).AsInt64(), want_sum)
            << name << " threads=" << threads;
      }
    }
  }
}

/// Vacuity guard: a parallel pipelined query must actually record
/// "pipeline" spans that executed multiple morsels — otherwise the parity
/// sweep above could pass with pipelining silently disabled or inline.
TEST_F(PipelineParityTest, ParallelRunsRecordPipelineSpans) {
  obs::TraceCollector trace;
  QueryOptions o;
  o.num_threads = 4;
  o.pipeline = true;
  o.trace = &trace;
  auto r = db_.Query(
      "SELECT g, SUM(v) AS s FROM big GROUP BY g ORDER BY g", o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  int pipeline_spans = 0;
  int64_t morsels = 0;
  std::function<void(const obs::SpanNode&)> walk =
      [&](const obs::SpanNode& s) {
        if (s.category == "pipeline") {
          ++pipeline_spans;
          morsels += s.Counter("morsels");
        }
        for (const auto& c : s.children) walk(*c);
      };
  walk(trace.root());
  EXPECT_GE(pipeline_spans, 2);  // agg pipeline + serial sort pipeline
  EXPECT_GT(morsels, 1) << "parallel pipelined run never split morsels";
}

}  // namespace
}  // namespace pytond::engine
