// Tests for the observability layer (src/obs): span trees, counters, JSON
// writer/validator, trace sinks, QueryProfile summarization, and the
// EXPLAIN ANALYZE golden shape over a real TPC-H query.

#include <gtest/gtest.h>

#include <string>

#include "core/session.h"
#include "obs/json.h"
#include "obs/query_profile.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond {
namespace {

namespace obs = pytond::obs;

// ---------------------------------------------------------------------------
// Span tree mechanics.

TEST(TraceTest, SpanNestingBuildsTree) {
  obs::TraceCollector c;
  {
    obs::Span outer(&c, "outer", "phase");
    {
      obs::Span inner(&c, "inner", "pass");
      inner.AddCounter("widgets", 3);
    }
    { obs::Span sibling(&c, "sibling", "pass"); }
  }
  const obs::SpanNode& root = c.root();
  ASSERT_EQ(root.children.size(), 1u);
  const obs::SpanNode* outer = root.FindChild("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->category, "phase");
  ASSERT_EQ(outer->children.size(), 2u);
  EXPECT_NE(outer->FindChild("inner"), nullptr);
  EXPECT_NE(outer->FindChild("sibling"), nullptr);
  // FindDescendant searches the whole subtree from the root.
  const obs::SpanNode* inner = root.FindDescendant("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->Counter("widgets"), 3);
}

TEST(TraceTest, DurationsAreInclusiveOfChildren) {
  obs::TraceCollector c;
  {
    obs::Span outer(&c, "outer", "phase");
    { obs::Span inner(&c, "inner", "pass"); }
  }
  const obs::SpanNode* outer = c.root().FindChild("outer");
  ASSERT_NE(outer, nullptr);
  const obs::SpanNode* inner = outer->FindChild("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(outer->duration_ns, inner->duration_ns);
  EXPECT_EQ(outer->SelfDurationNs(),
            outer->duration_ns - outer->ChildDurationNs());
  // Category-filtered child time: "pass" children only.
  EXPECT_EQ(outer->ChildDurationNs("pass"), inner->duration_ns);
  EXPECT_EQ(outer->ChildDurationNs("nope"), 0u);
}

TEST(TraceTest, CountersAggregateByDelta) {
  obs::TraceCollector c;
  {
    obs::Span s(&c, "s");
    s.AddCounter("rows", 10);
    s.AddCounter("rows", 5);
    s.AddCounter("other", -2);
  }
  const obs::SpanNode* s = c.root().FindChild("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Counter("rows"), 15);
  EXPECT_EQ(s->Counter("other"), -2);
  EXPECT_EQ(s->Counter("absent"), 0);
  EXPECT_TRUE(s->HasCounter("rows"));
  EXPECT_FALSE(s->HasCounter("absent"));
}

TEST(TraceTest, NullCollectorIsInert) {
  obs::Span s(nullptr, "never", "none");
  EXPECT_FALSE(s.active());
  s.AddCounter("rows", 1);  // must not crash
  s.End();
}

TEST(TraceTest, EndIsIdempotentAndStopsCounters) {
  obs::TraceCollector c;
  obs::Span s(&c, "s");
  s.AddCounter("kept", 1);
  s.End();
  s.End();
  s.AddCounter("dropped", 1);  // after End: dropped
  const obs::SpanNode* node = c.root().FindChild("s");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->HasCounter("kept"));
  EXPECT_FALSE(node->HasCounter("dropped"));
  EXPECT_GT(node->duration_ns, 0u);
}

// ---------------------------------------------------------------------------
// JSON writer + validator.

TEST(JsonTest, WriterEmitsWellFormedDocument) {
  obs::JsonWriter w;
  w.BeginObject()
      .Key("name").String("q\"uote\\back\nnewline")
      .Key("n").Int(-42)
      .Key("u").UInt(7)
      .Key("pi").Double(3.25)
      .Key("bad").Double(std::numeric_limits<double>::quiet_NaN())
      .Key("flag").Bool(true)
      .Key("nothing").Null()
      .Key("list").BeginArray().Int(1).Int(2).BeginObject().EndObject()
      .EndArray()
      .EndObject();
  EXPECT_TRUE(obs::ValidateJson(w.str()).ok()) << w.str();
  // Non-finite doubles degrade to null rather than emitting invalid JSON.
  EXPECT_NE(w.str().find("\"bad\":null"), std::string::npos) << w.str();
  // Control characters are escaped.
  EXPECT_NE(w.str().find("\\n"), std::string::npos);
}

TEST(JsonTest, EscapeJson) {
  EXPECT_EQ(obs::EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeJson("tab\there"), "tab\\there");
}

TEST(JsonTest, EscapeJsonControlCharacters) {
  // Every C0 control character must leave as an escape, never raw.
  for (int c = 0; c < 0x20; ++c) {
    std::string escaped = obs::EscapeJson(std::string(1, static_cast<char>(c)));
    EXPECT_EQ(escaped.find(static_cast<char>(c)), std::string::npos)
        << "raw control char " << c << " leaked";
    EXPECT_TRUE(obs::ValidateJson("\"" + escaped + "\"").ok())
        << "control char " << c << " -> " << escaped;
  }
  EXPECT_EQ(obs::EscapeJson(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::EscapeJson(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(obs::EscapeJson(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonTest, EscapeJsonPassesWellFormedUtf8) {
  // 2-, 3-, and 4-byte sequences pass through untouched.
  EXPECT_EQ(obs::EscapeJson("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(obs::EscapeJson("\xe2\x82\xac"), "\xe2\x82\xac");          // €
  EXPECT_EQ(obs::EscapeJson("\xf0\x9f\x98\x80"), "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonTest, EscapeJsonReplacesInvalidUtf8) {
  const std::string kReplacement = "\\ufffd";
  // Lone continuation byte.
  EXPECT_EQ(obs::EscapeJson("a\x80z"), "a" + kReplacement + "z");
  // Truncated 2-byte lead at end of string.
  EXPECT_EQ(obs::EscapeJson("a\xc3"), "a" + kReplacement);
  // Truncated 3-byte sequence followed by ASCII.
  EXPECT_EQ(obs::EscapeJson("\xe2\x82x"),
            kReplacement + kReplacement + "x");
  // Overlong encoding of '/' (0xc0 0xaf) is rejected byte-by-byte.
  EXPECT_EQ(obs::EscapeJson("\xc0\xaf"), kReplacement + kReplacement);
  // CESU-style surrogate half (0xed 0xa0 0x80) is not valid UTF-8.
  EXPECT_EQ(obs::EscapeJson("\xed\xa0\x80"),
            kReplacement + kReplacement + kReplacement);
  // Codepoints above U+10FFFF (0xf4 0x90 ...) are rejected.
  EXPECT_EQ(obs::EscapeJson("\xf4\x90\x80\x80"),
            kReplacement + kReplacement + kReplacement + kReplacement);
  // 0xfe / 0xff never appear in UTF-8.
  EXPECT_EQ(obs::EscapeJson("\xfe\xff"), kReplacement + kReplacement);
  // The result is always embeddable in a valid JSON document.
  std::string escaped = obs::EscapeJson("bad\xc0\xafmix\xf0\x28ok");
  EXPECT_TRUE(obs::ValidateJson("\"" + escaped + "\"").ok()) << escaped;
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(obs::ValidateJson("{}").ok());
  EXPECT_TRUE(obs::ValidateJson("[1, 2.5, -3e2, \"x\", true, null]").ok());
  EXPECT_TRUE(obs::ValidateJson("  {\"a\": [ {} ] }\n").ok());
  EXPECT_FALSE(obs::ValidateJson("").ok());
  EXPECT_FALSE(obs::ValidateJson("{").ok());
  EXPECT_FALSE(obs::ValidateJson("{}{}").ok());        // trailing content
  EXPECT_FALSE(obs::ValidateJson("{\"a\":}").ok());
  EXPECT_FALSE(obs::ValidateJson("[1,]").ok());
  EXPECT_FALSE(obs::ValidateJson("{\"a\" 1}").ok());
  EXPECT_FALSE(obs::ValidateJson("\"unterminated").ok());
  EXPECT_FALSE(obs::ValidateJson("\"bad\\escape\\q\"").ok());
  EXPECT_FALSE(obs::ValidateJson("-").ok());
  EXPECT_FALSE(obs::ValidateJson("nul").ok());
}

// ---------------------------------------------------------------------------
// Sinks over a synthetic trace.

TEST(SinksTest, SyntheticTraceRendersInAllFormats) {
  obs::TraceCollector c;
  {
    obs::Span compile(&c, "compile", "compile");
    obs::Span parse(&c, "parse", "phase");
    parse.AddCounter("functions", 1);
  }
  std::string tree = obs::FormatTree(c);
  EXPECT_NE(tree.find("compile"), std::string::npos);
  EXPECT_NE(tree.find("functions=1"), std::string::npos);

  std::string json = obs::ToJson(c);
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);

  std::string chrome = obs::ToChromeTrace(c);
  EXPECT_TRUE(obs::ValidateJson(chrome).ok()) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: trace a real TPC-H compile + run.

class ObsPipelineTest : public ::testing::Test {
 protected:
  static Session& SharedSession() {
    static Session* session = [] {
      auto* s = new Session();
      Status st = workloads::tpch::Populate(&s->db(), 0.002);
      if (!st.ok()) std::abort();
      return s;
    }();
    return *session;
  }
};

TEST_F(ObsPipelineTest, ChromeTraceCoversWholePipeline) {
  obs::TraceCollector collector;
  RunOptions opts;
  opts.trace = &collector;
  auto result =
      SharedSession().Run(workloads::tpch::GetQuery(6).source, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::string chrome = obs::ToChromeTrace(collector);
  ASSERT_TRUE(obs::ValidateJson(chrome).ok()) << chrome;
  // Every frontend phase, at least one optimizer pass, sqlgen, CTE
  // materialization, and executor operators all appear as events.
  for (const char* expected :
       {"\"name\":\"parse\"", "\"name\":\"anf\"", "\"name\":\"translate\"",
        "\"name\":\"optimize\"", "\"name\":\"sqlgen\"",
        "\"name\":\"RuleInlining\"", "\"cat\":\"cte\"",
        "\"cat\":\"operator\"", "\"name\":\"Filter\"",
        "\"name\":\"Aggregate\""}) {
    EXPECT_NE(chrome.find(expected), std::string::npos)
        << "missing " << expected;
  }
}

TEST_F(ObsPipelineTest, OperatorSpansRecordRowCounts) {
  obs::TraceCollector collector;
  RunOptions opts;
  opts.trace = &collector;
  auto result =
      SharedSession().Run(workloads::tpch::GetQuery(6).source, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The engine "query" span holds CTE + final-select children whose
  // operator spans carry rows_in/rows_out counters.
  const obs::SpanNode* query = collector.root().FindDescendant("query");
  ASSERT_NE(query, nullptr);
  const obs::SpanNode* filter = query->FindDescendant("Filter");
  ASSERT_NE(filter, nullptr);
  EXPECT_TRUE(filter->HasCounter("rows_in"));
  EXPECT_TRUE(filter->HasCounter("rows_out"));
  EXPECT_TRUE(filter->HasCounter("selectivity_bp"));
  EXPECT_LE(filter->Counter("rows_out"), filter->Counter("rows_in"));

  // The final-select root operator's rows_out equals the result size.
  const obs::SpanNode* final_select = query->FindChild("final_select");
  ASSERT_NE(final_select, nullptr);
  const obs::SpanNode* top_op = nullptr;
  for (const auto& child : final_select->children) {
    if (child->category == "operator") top_op = child.get();
  }
  ASSERT_NE(top_op, nullptr);
  EXPECT_EQ(top_op->Counter("rows_out"),
            static_cast<int64_t>((*result)->num_rows()));
}

TEST_F(ObsPipelineTest, QueryProfileSummarizesCompileAndExec) {
  auto profiled =
      SharedSession().RunProfiled(workloads::tpch::GetQuery(6).source);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();
  const obs::QueryProfile& p = profiled->profile;
  EXPECT_GT(p.compile_ms, 0.0);
  EXPECT_GT(p.exec_ms, 0.0);
  // Pipeline phases in order.
  ASSERT_GE(p.compile_phases.size(), 6u);
  EXPECT_EQ(p.compile_phases.front().first, "parse");
  EXPECT_EQ(p.compile_phases.back().first, "sqlgen");
  // O4 runs all seven TondIR passes (each at least one round).
  EXPECT_EQ(p.passes.size(), 7u);
  for (const auto& pass : p.passes) EXPECT_GE(pass.runs, 1);
  // Q6 is scan->filter->aggregate->project.
  bool saw_filter = false;
  for (const auto& op : p.operators) {
    if (op.name == "Filter") saw_filter = true;
  }
  EXPECT_TRUE(saw_filter);
  EXPECT_FALSE(p.ToString().empty());
}

TEST_F(ObsPipelineTest, BaselineTraceYieldsSpeedupRatio) {
  obs::TraceCollector collector;
  RunOptions opts;
  opts.trace = &collector;
  const std::string source = workloads::tpch::GetQuery(6).source;
  ASSERT_TRUE(SharedSession().Run(source, opts).ok());
  ASSERT_TRUE(SharedSession().RunBaseline(source, &collector).ok());
  obs::QueryProfile p = obs::SummarizeTrace(collector);
  EXPECT_GT(p.eager_ms, 0.0);
  EXPECT_GT(p.SpeedupVsBaseline(), 0.0);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE golden shape.

TEST_F(ObsPipelineTest, ExplainAnalyzeReportsActualRowCounts) {
  RunOptions ropts;
  auto compiled =
      SharedSession().Compile(workloads::tpch::GetQuery(6).source, ropts);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto result = SharedSession().db().Query(compiled->sql, {});
  ASSERT_TRUE(result.ok());
  size_t actual_rows = (*result)->num_rows();

  engine::QueryOptions qopts;
  qopts.explain = engine::ExplainMode::kAnalyze;
  auto text = SharedSession().db().ExplainQuery(compiled->sql, qopts);
  ASSERT_TRUE(text.ok()) << text.status().ToString();

  // Per-operator actuals: every plan line carries rows= and time=.
  EXPECT_NE(text->find("rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("time="), std::string::npos) << *text;
  EXPECT_NE(text->find("Filter("), std::string::npos) << *text;
  EXPECT_NE(text->find("sel="), std::string::npos) << *text;
  // Memory accounting: materializing operators report charged bytes.
  EXPECT_NE(text->find("mem="), std::string::npos) << *text;

  // The result header reports the true final cardinality.
  std::string expected_header =
      "-- Result (" + std::to_string(actual_rows) + " rows";
  EXPECT_NE(text->find(expected_header), std::string::npos) << *text;
}

TEST_F(ObsPipelineTest, ExplainPlanModeHasNoActuals) {
  RunOptions ropts;
  auto compiled =
      SharedSession().Compile(workloads::tpch::GetQuery(6).source, ropts);
  ASSERT_TRUE(compiled.ok());
  engine::QueryOptions qopts;
  qopts.explain = engine::ExplainMode::kPlan;
  auto text = SharedSession().db().ExplainQuery(compiled->sql, qopts);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("rows="), std::string::npos) << *text;
  EXPECT_EQ(text->find("time="), std::string::npos) << *text;
}

}  // namespace
}  // namespace pytond
