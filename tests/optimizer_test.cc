#include <gtest/gtest.h>

#include "optimizer/passes.h"
#include "tondir/ir.h"

namespace pytond::opt {
namespace {

using tondir::ParseProgram;
using tondir::ParseRule;
using tondir::Program;

Program Parse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? *p : Program();
}

// ---------------------------------------------------------- local DCE

TEST(LocalDceTest, RemovesUnusedAssignment) {
  // Paper §IV example: assignment var not listed in the head.
  Program p = Parse("R1(a, c) :- R(a, b, c), (x = (b * c)), (a < 10).");
  EXPECT_TRUE(LocalDeadCodeElimination(&p));
  EXPECT_EQ(tondir::RuleToString(p.rules[0]),
            "R1(a, c) :- R(a, b, c), (a < 10).");
}

TEST(LocalDceTest, KeepsAssignmentFeedingHead) {
  Program p = Parse("R1(a, x) :- R(a, b), (x = (b * 2)).");
  EXPECT_FALSE(LocalDeadCodeElimination(&p));
  EXPECT_EQ(p.rules[0].body.size(), 2u);
}

TEST(LocalDceTest, KeepsTransitiveChains) {
  // y feeds x which feeds the head; z is dead.
  Program p = Parse(
      "R1(a, x) :- R(a, b), (y = (b + 1)), (x = (y * 2)), (z = (b - 1)).");
  EXPECT_TRUE(LocalDeadCodeElimination(&p));
  EXPECT_EQ(p.rules[0].body.size(), 3u);  // access + y + x
}

TEST(LocalDceTest, KeepsFilterOperands) {
  Program p = Parse("R1(a) :- R(a, b), (x = (b + 1)), (x > 5).");
  EXPECT_FALSE(LocalDeadCodeElimination(&p));
}

TEST(LocalDceTest, KeepsSortAndGroupVars) {
  Program p = Parse(
      "R1(a) sort(s desc) limit(3) :- R(a, b), (s = (b * 2)).");
  EXPECT_FALSE(LocalDeadCodeElimination(&p));
}

// ---------------------------------------------------------- global DCE

TEST(GlobalDceTest, PrunesUnusedColumns) {
  // Paper §IV example: c, d produced by R1 but unused in R2.
  Program p = Parse(
      "R1(a, b, c, d) :- R(a, b, c, d), (a < 10), (c = d).\n"
      "R2(a, s) group(a) :- R1(a, b, c, d), (s = sum(b)).");
  EXPECT_TRUE(GlobalDeadCodeElimination(&p, {"R"}));
  EXPECT_EQ(p.rules[0].head.vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(p.rules[1].body[0].vars, (std::vector<std::string>{"a", "b"}));
}

TEST(GlobalDceTest, RemovesDeadRules) {
  Program p = Parse(
      "Dead(a) :- R(a, b).\n"
      "R2(a) :- R(a, b).");
  EXPECT_TRUE(GlobalDeadCodeElimination(&p, {"R"}));
  EXPECT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].head.relation, "R2");
}

TEST(GlobalDceTest, KeepsColumnsUsedByAnyReader) {
  Program p = Parse(
      "R1(a, b) :- R(a, b, c).\n"
      "R2(a) :- R1(a, b).\n"
      "R3(b) :- R1(a, b).\n"
      "R4(x, y) :- R2(x), R3(y).");
  EXPECT_FALSE(GlobalDeadCodeElimination(&p, {"R"}));
}

TEST(GlobalDceTest, SinkRuleColumnsAlwaysKept) {
  Program p = Parse("R1(a, b, c) :- R(a, b, c).");
  EXPECT_FALSE(GlobalDeadCodeElimination(&p, {"R"}));
}

// ------------------------------------------------ group-aggregate elim

TEST(GroupAggElimTest, EliminatesGroupOnUniqueKey) {
  // Paper §IV example: group-by-sum on a primary key.
  Program p = Parse(
      "R1(ID, s) group(ID) :- R(ID, a, b, c), (s = sum(b)).");
  p.relation_info["R"].unique_positions = {0};
  EXPECT_TRUE(GroupAggregateElimination(&p));
  EXPECT_EQ(tondir::RuleToString(p.rules[0]),
            "R1(ID, s) :- R(ID, a, b, c), (s = b).");
}

TEST(GroupAggElimTest, CountBecomesOne) {
  Program p = Parse("R1(ID, c) group(ID) :- R(ID, a), (c = count(a)).");
  p.relation_info["R"].unique_positions = {0};
  EXPECT_TRUE(GroupAggregateElimination(&p));
  EXPECT_EQ(tondir::TermToString(*p.rules[0].body[1].term), "1");
}

TEST(GroupAggElimTest, SkipsNonUniqueKey) {
  Program p = Parse("R1(a, s) group(a) :- R(ID, a, b), (s = sum(b)).");
  p.relation_info["R"].unique_positions = {0};
  EXPECT_FALSE(GroupAggregateElimination(&p));
}

TEST(GroupAggElimTest, JoinOfTwoUniqueAccesses) {
  // Both sides keyed on ID (unique in each) -> at most one row per group.
  Program p = Parse(
      "R1(ID, s) group(ID) :- X(ID, a), Y(ID, b), (s = sum(a * b)).");
  p.relation_info["X"].unique_positions = {0};
  p.relation_info["Y"].unique_positions = {0};
  EXPECT_TRUE(GroupAggregateElimination(&p));
  EXPECT_FALSE(p.rules[0].head.has_group());
}

TEST(GroupAggElimTest, SkipsWhenOneAccessUncovered) {
  Program p = Parse(
      "R1(ID, s) group(ID) :- X(ID, a), Y(k, b), (s = sum(a * b)).");
  p.relation_info["X"].unique_positions = {0};
  EXPECT_FALSE(GroupAggregateElimination(&p));
}

TEST(GroupAggElimTest, SkipsConstRelBodies) {
  Program p = Parse(
      "R1(ID, s) group(ID) :- X(ID, a), (c = [0, 1]), (s = sum(a)).");
  p.relation_info["X"].unique_positions = {0};
  EXPECT_FALSE(GroupAggregateElimination(&p));
}

// ---------------------------------------------------- self-join elim

TEST(SelfJoinElimTest, MergesRedundantSelfJoin) {
  // Paper §IV example.
  Program p = Parse("R1(ID, a, b) :- R(ID, a), R(ID, b).");
  p.relation_info["R"].unique_positions = {0};
  EXPECT_TRUE(SelfJoinElimination(&p));
  EXPECT_EQ(tondir::RuleToString(p.rules[0]),
            "R1(ID, a, a) :- R(ID, a).");
}

TEST(SelfJoinElimTest, SkipsNonUniqueJoin) {
  Program p = Parse("R1(k, a, b) :- R(k, a), R(k, b).");
  p.relation_info["R"].unique_positions = {1};
  EXPECT_FALSE(SelfJoinElimination(&p));
}

TEST(SelfJoinElimTest, SkipsDifferentRelations) {
  Program p = Parse("R1(ID, a, b) :- R(ID, a), S(ID, b).");
  p.relation_info["R"].unique_positions = {0};
  p.relation_info["S"].unique_positions = {0};
  EXPECT_FALSE(SelfJoinElimination(&p));
}

TEST(SelfJoinElimTest, TripleSelfJoinCollapsesFully) {
  Program p = Parse("R1(ID, a, b, c) :- R(ID, a), R(ID, b), R(ID, c).");
  p.relation_info["R"].unique_positions = {0};
  EXPECT_TRUE(SelfJoinElimination(&p));
  int accesses = 0;
  for (const auto& atom : p.rules[0].body) {
    if (atom.kind == tondir::Atom::Kind::kRelAccess) ++accesses;
  }
  EXPECT_EQ(accesses, 1);
}

// ------------------------------------------------------- rule inlining

TEST(FlowBreakerTest, ClassifiesPerTableVII) {
  EXPECT_TRUE(IsFlowBreaker(*ParseRule(
      "R(a, s) :- T(a, b), (s = sum(b)).")));                   // aggregate
  EXPECT_TRUE(IsFlowBreaker(*ParseRule(
      "R(a) group(a) :- T(a, b).")));                           // group by
  EXPECT_TRUE(IsFlowBreaker(*ParseRule("R(a) distinct :- T(a).")));
  EXPECT_TRUE(IsFlowBreaker(*ParseRule(
      "R(a) sort(a) limit(5) :- T(a).")));                      // sort/limit
  EXPECT_TRUE(IsFlowBreaker(*ParseRule(
      "R(a, b) :- T(a), U(b), @outer_left(a, b).")));           // outer join
  EXPECT_FALSE(IsFlowBreaker(*ParseRule("R(a) :- T(a, b), (a > 1).")));
}

TEST(RuleInliningTest, PaperExampleFusesChain) {
  // Paper §IV rule-inlining example.
  Program p = Parse(
      "R2(b, c, d) :- R1(a, b, c, d), (a > 1000).\n"
      "R3(b, d) :- R2(b, c, d), (c != \"A\").\n"
      "R5(e, g) :- R4(e, f, g), (f > 100).\n"
      "R6(b, g) :- R3(b, x), R5(x, g).\n"
      "R7(b, m) group(b) :- R6(b, g), (m = max(g)).");
  EXPECT_TRUE(RuleInlining(&p, {"R1", "R4"}));
  ASSERT_EQ(p.rules.size(), 1u);
  const tondir::Rule& r = p.rules[0];
  EXPECT_EQ(r.head.relation, "R7");
  EXPECT_TRUE(r.head.has_group());
  // The fused body reads both base tables and keeps all three filters.
  int accesses = 0, filters = 0;
  for (const auto& atom : r.body) {
    if (atom.kind == tondir::Atom::Kind::kRelAccess) ++accesses;
    if (atom.kind == tondir::Atom::Kind::kCompare &&
        atom.cmp_op != tondir::CmpOp::kEq) {
      ++filters;
    }
  }
  EXPECT_EQ(accesses, 2);
  EXPECT_EQ(filters, 3);
}

TEST(RuleInliningTest, StopsAtFlowBreakers) {
  Program p = Parse(
      "Agg(a, s) group(a) :- T(a, b), (s = sum(b)).\n"
      "Out(a, s) :- Agg(a, s), (s > 10).");
  EXPECT_FALSE(RuleInlining(&p, {"T"}));
  EXPECT_EQ(p.rules.size(), 2u);
}

TEST(RuleInliningTest, InlinesIntoMultipleReaders) {
  Program p = Parse(
      "V(a, b) :- T(a, b), (a > 0).\n"
      "Out(x, y) :- V(x, u), V(v, y).");
  EXPECT_TRUE(RuleInlining(&p, {"T"}));
  ASSERT_EQ(p.rules.size(), 1u);
  int accesses = 0;
  for (const auto& atom : p.rules[0].body) {
    if (atom.kind == tondir::Atom::Kind::kRelAccess) ++accesses;
  }
  EXPECT_EQ(accesses, 2);  // two independent copies of T
}

TEST(RuleInliningTest, RenamesAvoidCollisions) {
  Program p = Parse(
      "V(a) :- T(a, tmp), (tmp > 1).\n"
      "Out(a, tmp) :- V(a), U(a, tmp).");
  EXPECT_TRUE(RuleInlining(&p, {"T", "U"}));
  ASSERT_EQ(p.rules.size(), 1u);
  // The inlined `tmp` must have been freshened, not captured by reader's.
  std::set<std::string> vars;
  for (const auto& atom : p.rules[0].body) atom.CollectVars(&vars);
  EXPECT_TRUE(vars.count("tmp"));
  bool has_fresh = false;
  for (const auto& v : vars) {
    if (v.rfind("tmp_in", 0) == 0) has_fresh = true;
  }
  EXPECT_TRUE(has_fresh);
}

// --------------------------------------------- presets + full pipeline

TEST(PresetTest, LevelsAreCumulative) {
  OptimizerOptions o0 = OptimizerOptions::Preset(0);
  EXPECT_FALSE(o0.local_dce);
  EXPECT_FALSE(o0.rule_inlining);
  OptimizerOptions o2 = OptimizerOptions::Preset(2);
  EXPECT_TRUE(o2.local_dce);
  EXPECT_TRUE(o2.group_agg_elim);
  EXPECT_FALSE(o2.self_join_elim);
  OptimizerOptions o4 = OptimizerOptions::Preset(4);
  EXPECT_TRUE(o4.rule_inlining);
}

TEST(PipelineTest, CovarianceExampleCollapses) {
  // Figure 2 / §IV end-to-end: join on unique ids, self-joined for the
  // einsum, grouped on the unique id. After O4 everything collapses.
  Program p = Parse(
      "v1(ID, c0, c1) :- x(ID, xc0), y(ID2, yc1), (ID = ID2), "
      "(c0 = xc0), (c1 = yc1).\n"
      "v4(ID, d0, d1, d2, d3) group(ID) :- v1(ID, a0, a1), v1(ID, b0, b1), "
      "(d0 = sum(a0 * b0)), (d1 = sum(a0 * b1)), "
      "(d2 = sum(a1 * b0)), (d3 = sum(a1 * b1)).");
  p.relation_info["x"].unique_positions = {0};
  p.relation_info["y"].unique_positions = {0};
  p.relation_info["v1"].unique_positions = {0};
  ASSERT_TRUE(Optimize(&p, {"x", "y"}, OptimizerOptions::Preset(4)).ok());
  ASSERT_EQ(p.rules.size(), 1u);
  const tondir::Rule& r = p.rules[0];
  EXPECT_FALSE(r.head.has_group()) << tondir::RuleToString(r);
  // Self-join eliminated: one access to x and one to y remain.
  int accesses = 0;
  for (const auto& atom : r.body) {
    if (atom.kind == tondir::Atom::Kind::kRelAccess) ++accesses;
  }
  EXPECT_EQ(accesses, 2) << tondir::RuleToString(r);
}

TEST(PipelineTest, O0LeavesProgramUntouched) {
  Program p = Parse(
      "Dead(a) :- T(a, b).\n"
      "Out(a) :- T(a, b), (x = (b + 1)).");
  std::string before = p.ToString();
  ASSERT_TRUE(Optimize(&p, {"T"}, OptimizerOptions::Preset(0)).ok());
  EXPECT_EQ(p.ToString(), before);
}

TEST(PipelineTest, FixpointTerminates) {
  Program p = Parse(
      "A(x) :- T(x, y).\n"
      "B(x) :- A(x).\n"
      "C(x) :- B(x).\n"
      "D(x) :- C(x).\n"
      "E(x) :- D(x).");
  ASSERT_TRUE(Optimize(&p, {"T"}, OptimizerOptions::Preset(4)).ok());
  EXPECT_EQ(p.rules.size(), 1u);
}

// ------------------------------------- per-pass verification harness

/// Every textual fixture from the pass tests above, optimized at O4 with
/// the per-pass verifier on: no pass may leave the program in a state the
/// semantic verifier rejects.
TEST(VerifyEachPassTest, CleanOnAllFixtures) {
  struct Fixture {
    const char* text;
    std::set<std::string> bases;
    std::set<std::string> unique0;  // relations with unique position 0
  };
  const Fixture fixtures[] = {
      {"R1(a, c) :- R(a, b, c), (x = (b * c)), (a < 10).", {"R"}, {}},
      {"R1(a, x) :- R(a, b), (x = (b * 2)).", {"R"}, {}},
      {"R1(a, x) :- R(a, b), (y = (b + 1)), (x = (y * 2)), (z = (b - 1)).",
       {"R"},
       {}},
      {"R1(a) :- R(a, b), (x = (b + 1)), (x > 5).", {"R"}, {}},
      {"R1(a, s) sort(s desc) limit(3) :- R(a, b), (s = (b * 2)).",
       {"R"},
       {}},
      {"R1(a, b, c, d) :- R(a, b, c, d), (a < 10), (c = d).\n"
       "R2(a, s) group(a) :- R1(a, b, c, d), (s = sum(b)).",
       {"R"},
       {}},
      {"Dead(a) :- R(a, b).\nR2(a) :- R(a, b).", {"R"}, {}},
      {"R1(a, b) :- R(a, b, c).\nR2(a) :- R1(a, b).\nR3(b) :- R1(a, b).\n"
       "R4(x, y) :- R2(x), R3(y).",
       {"R"},
       {}},
      {"R1(a, b, c) :- R(a, b, c).", {"R"}, {}},
      {"R1(ID, s) group(ID) :- R(ID, a, b, c), (s = sum(b)).",
       {"R"},
       {"R"}},
      {"R1(ID, c) group(ID) :- R(ID, a), (c = count(a)).", {"R"}, {"R"}},
      {"R1(a, s) group(a) :- R(ID, a, b), (s = sum(b)).", {"R"}, {"R"}},
      {"R1(ID, s) group(ID) :- X(ID, a), Y(ID, b), (s = sum(a * b)).",
       {"X", "Y"},
       {"X", "Y"}},
      {"R1(ID, s) group(ID) :- X(ID, a), Y(k, b), (s = sum(a * b)).",
       {"X", "Y"},
       {"X"}},
      {"R1(ID, s) group(ID) :- X(ID, a), (c = [0, 1]), (s = sum(a)).",
       {"X"},
       {"X"}},
      {"R1(ID, a, b) :- R(ID, a), R(ID, b).", {"R"}, {"R"}},
      {"R1(ID, a, b) :- R(ID, a), S(ID, b).", {"R", "S"}, {"R", "S"}},
      {"R1(ID, a, b, c) :- R(ID, a), R(ID, b), R(ID, c).", {"R"}, {"R"}},
      {"R2(b, c, d) :- R1(a, b, c, d), (a > 1000).\n"
       "R3(b, d) :- R2(b, c, d), (c != \"A\").\n"
       "R5(e, g) :- R4(e, f, g), (f > 100).\n"
       "R6(b, g) :- R3(b, x), R5(x, g).\n"
       "R7(b, m) group(b) :- R6(b, g), (m = max(g)).",
       {"R1", "R4"},
       {}},
      {"Agg(a, s) group(a) :- T(a, b), (s = sum(b)).\n"
       "Out(a, s) :- Agg(a, s), (s > 10).",
       {"T"},
       {}},
      {"V(a, b) :- T(a, b), (a > 0).\nOut(x, y) :- V(x, u), V(v, y).",
       {"T"},
       {}},
      {"V(a) :- T(a, tmp), (tmp > 1).\nOut(a, tmp) :- V(a), U(a, tmp).",
       {"T", "U"},
       {}},
      {"v1(ID, c0, c1) :- x(ID, xc0), y(ID2, yc1), (ID = ID2), "
       "(c0 = xc0), (c1 = yc1).\n"
       "v4(ID, d0, d1, d2, d3) group(ID) :- v1(ID, a0, a1), v1(ID, b0, b1), "
       "(d0 = sum(a0 * b0)), (d1 = sum(a0 * b1)), "
       "(d2 = sum(a1 * b0)), (d3 = sum(a1 * b1)).",
       {"x", "y"},
       {"x", "y", "v1"}},
      {"Dead(a) :- T(a, b).\nOut(a) :- T(a, b), (x = (b + 1)).", {"T"}, {}},
      {"A(x) :- T(x, y).\nB(x) :- A(x).\nC(x) :- B(x).\nD(x) :- C(x).\n"
       "E(x) :- D(x).",
       {"T"},
       {}},
  };
  for (const Fixture& f : fixtures) {
    Program p = Parse(f.text);
    for (const auto& rel : f.unique0) {
      p.relation_info[rel].unique_positions = {0};
    }
    OptimizerOptions o = OptimizerOptions::Preset(4);
    o.verify_each_pass = true;
    Status s = Optimize(&p, f.bases, o);
    EXPECT_TRUE(s.ok()) << f.text << "\n" << s.ToString();
  }
}

/// Corrupting the program right after a specific pass must produce an
/// Internal error that names that pass and the violated invariant.
TEST(VerifyEachPassTest, NamesOffendingPass) {
  Program p = Parse(
      "A(x) :- T(x, y).\n"
      "B(x) :- A(x).");
  OptimizerOptions o = OptimizerOptions::Preset(4);
  o.verify_each_pass = true;
  o.post_pass_hook = [](const char* pass, Program* prog) {
    if (std::string(pass) == "RuleInlining" && !prog->rules.empty()) {
      prog->rules.back().head.vars.push_back("oops");
      prog->rules.back().head.col_names.push_back("oops");
    }
  };
  Status s = Optimize(&p, {"T"}, o);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("RuleInlining"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("T003"), std::string::npos) << s.ToString();
}

TEST(VerifyEachPassTest, RejectsInvalidInputProgram) {
  Program p = Parse("Out(zz) :- T(a, b).");
  OptimizerOptions o = OptimizerOptions::Preset(4);
  o.verify_each_pass = true;
  Status s = Optimize(&p, {"T"}, o);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("T003"), std::string::npos) << s.ToString();
}

// ------------------------------------------ fact-gated rewrite contract
//
// Keys of *derived* relations are re-derived structurally by the dataflow
// analysis on every pass invocation; a stale relation_info entry alone can
// no longer justify a rewrite.

TEST(FactGatingTest, StaleKeyOnDerivedRelationBlocksSelfJoinElim) {
  // `d` copies every row of base `t` (no uniqueness anywhere), but a
  // stale/wrong catalog entry claims d.k is unique. Merging the two `d`
  // accesses would drop rows whenever t has duplicate keys — the facts
  // engine refuses because no structural key derivation covers d.
  Program p = Parse(
      "d(k, v) :- t(k, v).\n"
      "out(k, a, b) :- d(k, a), d(k, b).");
  p.relation_info["d"].unique_positions = {0};  // stale: not actually true
  EXPECT_FALSE(SelfJoinElimination(&p));
  EXPECT_EQ(p.rules[1].body.size(), 2u);
}

TEST(FactGatingTest, DerivedGroupByKeyJustifiesSelfJoinElim) {
  // Same shape, but `d` really is keyed on k: it is a group-by head, so
  // the dataflow derives key {k} structurally and the merge is sound.
  Program p = Parse(
      "d(k, s) group(k) :- t(k, v), (s = sum(v)).\n"
      "out(k, a, b) :- d(k, a), d(k, b).");
  std::vector<std::string> log;
  EXPECT_TRUE(SelfJoinElimination(&p, &log));
  EXPECT_EQ(p.rules[1].body.size(), 1u);
  ASSERT_FALSE(log.empty());
  EXPECT_NE(log[0].find("SelfJoinElimination"), std::string::npos) << log[0];
  EXPECT_NE(log[0].find("group-by"), std::string::npos)
      << "justification must cite the derived key fact: " << log[0];
}

TEST(FactGatingTest, StaleKeyOnDerivedRelationBlocksGroupAggElim) {
  Program p = Parse(
      "d(k, v) :- t(k, v).\n"
      "out(k, s) group(k) :- d(k, v), (s = sum(v)).");
  p.relation_info["d"].unique_positions = {0};  // stale: not actually true
  EXPECT_FALSE(GroupAggregateElimination(&p));
  EXPECT_TRUE(p.rules[1].head.has_group());
}

TEST(FactGatingTest, BaseDirectiveKeyStillJustifiesGroupAggElim) {
  // Extensional relations keep their catalog ground truth: @base unique
  // positions seed the key lattice directly.
  Program p = Parse(
      "@base t(k, v) unique(0).\n"
      "out(k, s) group(k) :- t(k, v), (s = sum(v)).");
  std::vector<std::string> log;
  EXPECT_TRUE(GroupAggregateElimination(&p, &log));
  EXPECT_FALSE(p.rules[0].head.has_group());
  ASSERT_FALSE(log.empty());
  EXPECT_NE(log[0].find("GroupAggregateElimination"), std::string::npos);
  EXPECT_NE(log[0].find("declared unique"), std::string::npos)
      << "justification must cite the catalog fact: " << log[0];
}

// --------------------------------------------------- predicate simplify

TEST(PredicateSimplifyTest, FoldsImpliedFilter) {
  Program p = Parse(
      "@base t(a, b).\n"
      "out(a) :- t(a, b), (a > 10), (a > 5).");
  std::vector<std::string> log;
  EXPECT_TRUE(PredicateSimplify(&p, &log));
  // The weaker filter is gone, the stronger one stays.
  EXPECT_EQ(tondir::RuleToString(p.rules[0]),
            "out(a) :- t(a, b), (a > 10).");
  ASSERT_FALSE(log.empty());
  EXPECT_NE(log[0].find("always-true"), std::string::npos) << log[0];
}

TEST(PredicateSimplifyTest, KeepsNonRedundantFilters) {
  Program p = Parse(
      "@base t(a, b).\n"
      "out(a) :- t(a, b), (a > 10), (b > 5).");
  EXPECT_FALSE(PredicateSimplify(&p));
  EXPECT_EQ(p.rules[0].body.size(), 3u);
}

TEST(PredicateSimplifyTest, RemovesDuplicateFilter) {
  Program p = Parse(
      "@base t(a, b).\n"
      "out(a) :- t(a, b), (b < 3), (b < 3).");
  EXPECT_TRUE(PredicateSimplify(&p));
  EXPECT_EQ(tondir::RuleToString(p.rules[0]),
            "out(a) :- t(a, b), (b < 3).");
}

TEST(PredicateSimplifyTest, CapsProvablyEmptyRuleWithLimitZero) {
  Program p = Parse(
      "@base t(a, b).\n"
      "out(a) :- t(a, b), (a > 10), (a < 5).");
  std::vector<std::string> log;
  EXPECT_TRUE(PredicateSimplify(&p, &log));
  ASSERT_TRUE(p.rules[0].head.limit.has_value());
  EXPECT_EQ(*p.rules[0].head.limit, 0);
  // Idempotent: a second run does not re-cap or re-log.
  log.clear();
  EXPECT_FALSE(PredicateSimplify(&p, &log));
  EXPECT_TRUE(log.empty());
}

TEST(PredicateSimplifyTest, DropsDeadBindingInsideExists) {
  // Local DCE treats every exists-body variable as live; the facts-driven
  // pass proves `d` and `e` are bound-but-never-used and removes them.
  Program p = Parse(
      "@base ps(a, b, c).\n"
      "@base s(x).\n"
      "out(x) :- s(x), exists(ps(a, b, c), (d = a), (e = b), (b = x)).");
  std::vector<std::string> log;
  EXPECT_TRUE(PredicateSimplify(&p, &log));
  EXPECT_EQ(p.rules[0].body[1].exists_body->size(), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(PredicateSimplifyTest, KeepsLiveExistsBindings) {
  // `d` feeds the correlation filter: not dead, must survive.
  Program p = Parse(
      "@base ps(a, b, c).\n"
      "@base s(x).\n"
      "out(x) :- s(x), exists(ps(a, b, c), (d = a), (d = x)).");
  EXPECT_FALSE(PredicateSimplify(&p));
  EXPECT_EQ(p.rules[0].body[1].exists_body->size(), 3u);
}

TEST(PredicateSimplifyTest, OptimizeRewriteLogCollectsJustifications) {
  Program p = Parse(
      "@base t(k, v) unique(0).\n"
      "out(k, s) group(k) :- t(k, v), (s = sum(v)), (k > 0), (k > -5).");
  OptimizerOptions o = OptimizerOptions::Preset(4);
  std::vector<std::string> log;
  o.rewrite_log = &log;
  ASSERT_TRUE(Optimize(&p, {"t"}, o).ok());
  bool saw_group_agg = false, saw_pred_simplify = false;
  for (const auto& line : log) {
    if (line.find("GroupAggregateElimination") != std::string::npos) {
      saw_group_agg = true;
    }
    if (line.find("PredicateSimplify") != std::string::npos) {
      saw_pred_simplify = true;
    }
  }
  EXPECT_TRUE(saw_group_agg) << "log has " << log.size() << " lines";
  EXPECT_TRUE(saw_pred_simplify) << "log has " << log.size() << " lines";
}

}  // namespace
}  // namespace pytond::opt
