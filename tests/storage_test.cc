#include <gtest/gtest.h>

#include <cstdio>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/column.h"
#include "storage/table.h"

namespace pytond {
namespace {

TEST(ColumnTest, TypedConstruction) {
  Column c = Column::Int64({1, 2, 3});
  EXPECT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Get(1), Value::Int64(2));
}

TEST(ColumnTest, NullHandling) {
  Column c = Column::Float64({1.0, 2.0});
  EXPECT_FALSE(c.has_nulls());
  c.AppendNull();
  EXPECT_TRUE(c.has_nulls());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.IsValid(0));
  EXPECT_FALSE(c.IsValid(2));
  EXPECT_TRUE(c.Get(2).is_null());
  c.Append(Value::Float64(4.0));
  EXPECT_TRUE(c.IsValid(3));
}

TEST(ColumnTest, Gather) {
  Column c = Column::String({"a", "b", "c", "d"});
  Column g = c.Gather({3, 1});
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.strings()[0], "d");
  EXPECT_EQ(g.strings()[1], "b");
}

TEST(ColumnTest, GatherPreservesValidity) {
  Column c = Column::Int64({1, 2, 3});
  c.AppendNull();
  Column g = c.Gather({3, 0});
  EXPECT_FALSE(g.IsValid(0));
  EXPECT_TRUE(g.IsValid(1));
}

TEST(ColumnTest, AppendFromCopiesTypedValue) {
  Column src = Column::Date({100, 200});
  Column dst(DataType::kDate);
  dst.AppendFrom(src, 1);
  EXPECT_EQ(dst.dates()[0], 200);
}

TEST(SchemaTest, Find) {
  Schema s;
  s.Add("a", DataType::kInt64);
  s.Add("b", DataType::kString);
  EXPECT_EQ(s.Find("b"), 1);
  EXPECT_EQ(s.Find("zz"), -1);
}

TEST(TableTest, AppendAndGetRows) {
  Schema s;
  s.Add("id", DataType::kInt64);
  s.Add("name", DataType::kString);
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value::Int64(1), Value::String("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int64(2), Value::String("y")}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  auto row = t.GetRow(1);
  EXPECT_EQ(row[0], Value::Int64(2));
  EXPECT_EQ(row[1], Value::String("y"));
}

TEST(TableTest, AddColumnLengthMismatchFails) {
  Schema s;
  s.Add("a", DataType::kInt64);
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value::Int64(1)}).ok());
  EXPECT_FALSE(t.AddColumn("b", Column::Int64({1, 2})).ok());
  EXPECT_TRUE(t.AddColumn("b", Column::Int64({5})).ok());
  EXPECT_EQ(t.schema().Find("b"), 1);
}

TEST(TableTest, UnorderedEqualsIgnoresRowOrder) {
  Schema s;
  s.Add("a", DataType::kInt64);
  s.Add("b", DataType::kFloat64);
  Table t1(s), t2(s);
  ASSERT_TRUE(t1.AppendRow({Value::Int64(1), Value::Float64(0.5)}).ok());
  ASSERT_TRUE(t1.AppendRow({Value::Int64(2), Value::Float64(1.5)}).ok());
  ASSERT_TRUE(t2.AppendRow({Value::Int64(2), Value::Float64(1.5)}).ok());
  ASSERT_TRUE(t2.AppendRow({Value::Int64(1), Value::Float64(0.5)}).ok());
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(t1, t2, 1e-9, &diff)) << diff;
}

TEST(TableTest, UnorderedEqualsDetectsDifference) {
  Schema s;
  s.Add("a", DataType::kInt64);
  Table t1(s), t2(s);
  ASSERT_TRUE(t1.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(t2.AppendRow({Value::Int64(9)}).ok());
  std::string diff;
  EXPECT_FALSE(Table::UnorderedEquals(t1, t2, 1e-9, &diff));
  EXPECT_FALSE(diff.empty());
}

TEST(TableTest, UnorderedEqualsFloatTolerance) {
  Schema s;
  s.Add("a", DataType::kFloat64);
  Table t1(s), t2(s);
  ASSERT_TRUE(t1.AppendRow({Value::Float64(100.0)}).ok());
  ASSERT_TRUE(t2.AppendRow({Value::Float64(100.0 + 1e-9)}).ok());
  EXPECT_TRUE(Table::UnorderedEquals(t1, t2, 1e-6));
  Table t3(s);
  ASSERT_TRUE(t3.AppendRow({Value::Float64(101.0)}).ok());
  EXPECT_FALSE(Table::UnorderedEquals(t1, t3, 1e-6));
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  Schema s;
  s.Add("k", DataType::kInt64);
  ASSERT_TRUE(cat.CreateTable("t", Table(s)).ok());
  EXPECT_TRUE(cat.HasTable("t"));
  EXPECT_NE(cat.GetTable("t"), nullptr);
  EXPECT_FALSE(cat.CreateTable("t", Table(s)).ok());  // duplicate
  EXPECT_TRUE(cat.DropTable("t").ok());
  EXPECT_FALSE(cat.DropTable("t").ok());
  EXPECT_EQ(cat.GetTable("t"), nullptr);
}

TEST(CatalogTest, ConstraintsUniqueness) {
  Catalog cat;
  Schema s;
  s.Add("id", DataType::kInt64);
  s.Add("u", DataType::kString);
  s.Add("v", DataType::kString);
  TableConstraints tc;
  tc.primary_key = {"id"};
  tc.unique_columns = {"u"};
  ASSERT_TRUE(cat.CreateTable("t", Table(s), tc).ok());
  const TableConstraints* got = cat.GetConstraints("t");
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(got->IsUniqueColumn("id"));
  EXPECT_TRUE(got->IsUniqueColumn("u"));
  EXPECT_FALSE(got->IsUniqueColumn("v"));
}

TEST(CatalogTest, CompositePkColumnNotIndividuallyUnique) {
  TableConstraints tc;
  tc.primary_key = {"a", "b"};
  EXPECT_FALSE(tc.IsUniqueColumn("a"));
}

}  // namespace
}  // namespace pytond

namespace pytond {
namespace {

Schema CsvSchema() {
  Schema s;
  s.Add("k", DataType::kInt64);
  s.Add("name", DataType::kString);
  s.Add("v", DataType::kFloat64);
  s.Add("d", DataType::kDate);
  return s;
}

Table CsvSample() {
  Table t(CsvSchema());
  EXPECT_TRUE(t.AppendRow({Value::Int64(1), Value::String("plain"),
                           Value::Float64(1.5), Value::Date(9000)})
                  .ok());
  EXPECT_TRUE(t.AppendRow({Value::Int64(2), Value::String("has,comma"),
                           Value::Float64(-2.0), Value::Date(9001)})
                  .ok());
  EXPECT_TRUE(t.AppendRow({Value::Int64(3), Value::String("says \"hi\""),
                           Value::Null(), Value::Date(9002)})
                  .ok());
  return t;
}

TEST(CsvTest, RoundTripsValuesQuotesAndNulls) {
  Table t = CsvSample();
  std::string text = csv::WriteCsv(t);
  auto back = csv::ReadCsv(text, CsvSchema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(t, *back, 1e-9, &diff)) << diff << text;
  // The quoted fields survive verbatim.
  EXPECT_EQ(back->column(1).Get(1), Value::String("has,comma"));
  EXPECT_EQ(back->column(1).Get(2), Value::String("says \"hi\""));
  EXPECT_FALSE(back->column(2).IsValid(2));
}

TEST(CsvTest, RejectsHeaderMismatch) {
  Schema wrong;
  wrong.Add("x", DataType::kInt64);
  wrong.Add("name", DataType::kString);
  wrong.Add("v", DataType::kFloat64);
  wrong.Add("d", DataType::kDate);
  EXPECT_FALSE(csv::ReadCsv(csv::WriteCsv(CsvSample()), wrong).ok());
}

TEST(CsvTest, RejectsRaggedRecords) {
  EXPECT_FALSE(
      csv::ReadCsv("k,name,v,d\n1,two\n", CsvSchema()).ok());
}

TEST(CsvTest, CustomSeparator) {
  Table t = CsvSample();
  std::string text = csv::WriteCsv(t, '|');
  auto back = csv::ReadCsv(text, CsvSchema(), '|');
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 3u);
}

TEST(CsvTest, FileRoundTrip) {
  Table t = CsvSample();
  std::string path = ::testing::TempDir() + "/pytond_csv_test.csv";
  ASSERT_TRUE(csv::WriteCsvFile(t, path).ok());
  auto back = csv::ReadCsvFile(path, CsvSchema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 3u);
  std::remove(path.c_str());
  EXPECT_FALSE(csv::ReadCsvFile(path, CsvSchema()).ok());
}

}  // namespace
}  // namespace pytond
