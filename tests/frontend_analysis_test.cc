#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "core/session.h"
#include "engine/database.h"
#include "frontend/analysis/analyzer.h"
#include "frontend/compiler.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond::frontend::check {
namespace {

using pytond::analysis::Diagnostic;
using pytond::analysis::Severity;
namespace codes = pytond::analysis::codes;

// Shared `# @base` schemas: a plain frame, a join partner, a dense matrix
// (two data columns), and a single-data-column vector.
constexpr const char* kBases =
    "# @base t(id, k, v:float64, cat:string)\n"
    "# @base u(id, k, w:float64)\n"
    "# @base m(id, c0:float64, c1:float64)\n"
    "# @base vec(id, c0:float64)\n";

std::vector<FunctionFacts> Analyze(const std::string& body,
                                   bool flow_breakers = false) {
  AnalyzerOptions options;
  options.report_flow_breakers = flow_breakers;
  auto r = AnalyzeSource(std::string(kBases) + body, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<FunctionFacts>{};
}

const Diagnostic* FindDiag(const std::vector<FunctionFacts>& fs,
                           const char* code) {
  for (const FunctionFacts& f : fs) {
    for (const Diagnostic& d : f.diagnostics) {
      if (d.code == code) return &d;
    }
  }
  return nullptr;
}

// Positive-case helper: the code fires, carries a source location, and has
// a non-empty why-chain (notes).
void ExpectDiag(const std::string& body, const char* code,
                bool flow_breakers = false) {
  auto fs = Analyze(body, flow_breakers);
  const Diagnostic* d = FindDiag(fs, code);
  ASSERT_NE(d, nullptr) << "expected " << code << " for:\n" << body;
  EXPECT_GE(d->line, 1) << code << " has no source location";
  EXPECT_FALSE(d->notes.empty()) << code << " has an empty why-chain";
  EXPECT_FALSE(d->message.empty());
}

void ExpectNoDiag(const std::string& body, const char* code,
                  bool flow_breakers = false) {
  auto fs = Analyze(body, flow_breakers);
  EXPECT_EQ(FindDiag(fs, code), nullptr)
      << "unexpected " << code << " for:\n" << body;
}

// ------------------------------------------------ F001 unknown column

TEST(FCodes, F001Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    out = t[t.vv > 1]
    return out
)",
             codes::kUnknownColumn);
}

TEST(FCodes, F001Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    out = t[t.v > 1]
    return out
)",
               codes::kUnknownColumn);
}

// ------------------------------------------------ F002 unknown table

TEST(FCodes, F002Positive) {
  AnalyzerOptions options;
  auto r = AnalyzeSource(R"(
@pytond()
def q(mystery):
    return mystery
)",
                         options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Diagnostic* d = FindDiag(*r, codes::kUnknownTable);
  ASSERT_NE(d, nullptr);
  EXPECT_GE(d->line, 1);
  EXPECT_FALSE(d->notes.empty());
}

TEST(FCodes, F002Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    return t
)",
               codes::kUnknownTable);
}

// ------------------------------------------------ F003 undefined name

TEST(FCodes, F003Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    out = t[mask]
    return out
)",
             codes::kUndefinedName);
}

TEST(FCodes, F003Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    mask = t.v > 1
    out = t[mask]
    return out
)",
               codes::kUndefinedName);
}

// ------------------------------------------------ F004 unsupported API

TEST(FCodes, F004Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    w = t.rolling(7)
    return w
)",
             codes::kUnsupportedApi);
}

TEST(FCodes, F004Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    out = t.head(5)
    return out
)",
               codes::kUnsupportedApi);
}

// ------------------------------------------- F005 type-incompatible

TEST(FCodes, F005Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    out = t[t.cat > 7]
    return out
)",
             codes::kTypeIncompatible);
}

TEST(FCodes, F005Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    out = t[t.k > 7]
    return out
)",
               codes::kTypeIncompatible);
}

// ------------------------------------------------ F006 cross-frame op

TEST(FCodes, F006Positive) {
  ExpectDiag(R"(
@pytond()
def q(t, u):
    mask = t.v > 1
    out = u[mask]
    return out
)",
             codes::kCrossFrameOp);
}

TEST(FCodes, F006Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    mask = t.v > 1
    out = t[mask]
    return out
)",
               codes::kCrossFrameOp);
}

// ------------------------------------------------------ F007 bad axis

TEST(FCodes, F007Positive) {
  ExpectDiag(R"(
@pytond()
def q(m):
    a = m.to_numpy()
    s = a.sum(axis=2)
    return s
)",
             codes::kBadAxis);
}

TEST(FCodes, F007Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(m):
    a = m.to_numpy()
    s = a.sum(axis=1)
    return s
)",
               codes::kBadAxis);
}

// ---------------------------------------------------- F008 bad einsum

TEST(FCodes, F008Positive) {
  ExpectDiag(R"(
@pytond()
def q(m):
    a = m.to_numpy()
    r = np.einsum('ijk,jk->i', a, a)
    return r
)",
             codes::kBadEinsum);
}

TEST(FCodes, F008Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(m, vec):
    a = m.to_numpy()
    b = vec.to_numpy()
    r = np.einsum('ij,j->i', a, b)
    return r
)",
               codes::kBadEinsum);
}

// ------------------------------------------------- F009 bad merge key

TEST(FCodes, F009Positive) {
  ExpectDiag(R"(
@pytond()
def q(t, u):
    j = t.merge(u, on='nope')
    return j
)",
             codes::kBadMergeKey);
}

TEST(FCodes, F009Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t, u):
    j = t.merge(u, on='k')
    return j
)",
               codes::kBadMergeKey);
}

// ------------------------------------------------- F010 dead binding

TEST(FCodes, F010Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    unused = t[t.v > 1]
    out = t[t.k < 3]
    return out
)",
             codes::kDeadBinding);
}

TEST(FCodes, F010Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    a = t[t.v > 1]
    out = a[a.k < 3]
    return out
)",
               codes::kDeadBinding);
}

// ------------------------------------------------- F011 flow breaker

TEST(FCodes, F011Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    g = t.groupby(['cat']).agg(s=('v', 'sum'))
    return g
)",
             codes::kFlowBreaker, /*flow_breakers=*/true);
}

TEST(FCodes, F011Negative) {
  // Same program: off by default (the compiler path would warn on every
  // aggregating query otherwise).
  ExpectNoDiag(R"(
@pytond()
def q(t):
    g = t.groupby(['cat']).agg(s=('v', 'sum'))
    return g
)",
               codes::kFlowBreaker, /*flow_breakers=*/false);
  // And a pure relational pipeline stays quiet even with reporting on.
  ExpectNoDiag(R"(
@pytond()
def q(t):
    out = t[t.v > 1]
    return out
)",
               codes::kFlowBreaker, /*flow_breakers=*/true);
}

// --------------------------------------------- F012 shadowed binding

TEST(FCodes, F012Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    x = t[t.v > 1]
    x = t[t.k < 3]
    return x
)",
             codes::kShadowedBinding);
}

TEST(FCodes, F012Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    x = t[t.v > 1]
    y = x[['k', 'v']]
    x = t[t.k < 3]
    return x
)",
               codes::kShadowedBinding);
}

// -------------------------------------------- F013 missing argument

TEST(FCodes, F013Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    out = t[t.cat.isin([])]
    return out
)",
             codes::kMissingArgument);
}

TEST(FCodes, F013Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    out = t[t.cat.isin(['a', 'b'])]
    return out
)",
               codes::kMissingArgument);
}

// ---------------------------------------- F014 non-literal argument

TEST(FCodes, F014Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    out = t.sort_values(by=3)
    return out
)",
             codes::kNonLiteralArgument);
}

TEST(FCodes, F014Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    out = t.sort_values(by=['v'], ascending=[False])
    return out
)",
               codes::kNonLiteralArgument);
}

// -------------------------------------------------- F015 bad return

TEST(FCodes, F015Positive) {
  ExpectDiag(R"(
@pytond()
def q(t):
    out = t[t.v > 1]
)",
             codes::kBadReturn);
}

TEST(FCodes, F015Negative) {
  ExpectNoDiag(R"(
@pytond()
def q(t):
    out = t[t.v > 1]
    return out
)",
               codes::kBadReturn);
}

// ------------------------------------------------ analyzer fact dumps

TEST(AnalyzerFacts, SchemaAndLivenessInference) {
  auto fs = Analyze(R"(
@pytond()
def q(t):
    a = t[t.v > 1]
    out = a[['k', 'v']]
    return out
)");
  ASSERT_EQ(fs.size(), 1u);
  const FunctionFacts& f = fs[0];
  EXPECT_TRUE(f.error_status.ok());
  const BindingFacts* a = f.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, ValueKind::kFrame);
  EXPECT_EQ(a->klass, Translatability::kTranslatable);
  EXPECT_GE(a->schema.Find("v"), 0);
  EXPECT_FALSE(a->why.empty());
  // `a` is last read by the projection (its defining statement + 1).
  EXPECT_TRUE(f.DiesAt("a", a->stmt_index + 1));
  const BindingFacts* out = f.Find("out");
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->returned);
  EXPECT_GE(out->schema.Find("k"), 0);
  EXPECT_GE(out->schema.Find("v"), 0);
  EXPECT_FALSE(f.Dump().empty());
}

TEST(AnalyzerFacts, FlowBreakerClassification) {
  auto fs = Analyze(R"(
@pytond()
def q(t):
    g = t.groupby(['cat']).agg(s=('v', 'sum'))
    return g
)");
  ASSERT_EQ(fs.size(), 1u);
  const BindingFacts* g = fs[0].Find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->klass, Translatability::kFlowBreaker);
  EXPECT_FALSE(g->reason.empty());
  EXPECT_GE(g->schema.Find("s"), 0);
}

TEST(AnalyzerFacts, ErrorStatusPreservesCode) {
  auto fs = Analyze(R"(
@pytond()
def q(t):
    out = t[t.vv > 1]
    return out
)");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].error_status.code(), StatusCode::kNotFound);
}

// --------------------------------------- fact-gated filter fusion

class FusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t;
    ASSERT_TRUE(t.AddColumn("k", Column::Int64({1, 2, 3, 4, 5})).ok());
    ASSERT_TRUE(
        t.AddColumn("cat", Column::String({"a", "b", "a", "b", "c"})).ok());
    ASSERT_TRUE(t.AddColumn("v", Column::Float64({10, 20, 30, 40, 50})).ok());
    TableConstraints tc;
    tc.primary_key = {"k"};
    ASSERT_TRUE(db_.CreateTable("t", std::move(t), tc).ok());
  }

  Compiled Compile(const std::string& source) {
    CompileOptions opts;
    auto c = CompileFunction(source, db_.catalog(), opts);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : Compiled{};
  }

  static bool LogContains(const Compiled& c, const std::string& needle) {
    for (const std::string& line : c.rewrite_log) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  static std::string FormatLog(const Compiled& c) {
    std::string s;
    for (const std::string& line : c.rewrite_log) {
      s += line;
      s += '\n';
    }
    return s;
  }

  engine::Database db_;
};

TEST_F(FusionTest, ChainedFilterFuses) {
  Compiled c = Compile(R"(
@pytond()
def q(t):
    a = t[t.v > 20]
    out = a[a.k < 5]
    return out
)");
  EXPECT_TRUE(LogContains(c, "fused filter into producer"))
      << "rewrite_log:\n" << FormatLog(c);
  auto r = db_.Query(c.sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2u);  // v>20 -> k in {3,4,5}; k<5 -> {3,4}
}

TEST_F(FusionTest, GroupbyBlocksFusion) {
  Compiled c = Compile(R"(
@pytond()
def q(t):
    g = t.groupby(['cat']).agg(s=('v', 'sum'))
    out = g[g.s > 30]
    return out
)");
  EXPECT_FALSE(LogContains(c, "fused filter into producer"));
  EXPECT_TRUE(LogContains(c, "not fused")) << FormatLog(c);
  auto r = db_.Query(c.sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 3u);  // a:40, b:60, c:50
}

TEST_F(FusionTest, LiveAliasBlocksFusion) {
  Compiled c = Compile(R"(
@pytond()
def q(t):
    a = t[t.v > 20]
    b = a
    out = b[b.k < 5]
    return out
)");
  EXPECT_FALSE(LogContains(c, "fused filter into producer"));
  EXPECT_TRUE(LogContains(c, "not fused")) << FormatLog(c);
  auto r = db_.Query(c.sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2u);
}

// Fusion never changes results even when the producer chain is deep.
TEST_F(FusionTest, DeepChainStaysCorrect) {
  Compiled c = Compile(R"(
@pytond()
def q(t):
    a = t[t.v > 10]
    b = a[a.v > 20]
    d = b[b.v > 30]
    out = d[d.k < 5]
    return out
)");
  auto r = db_.Query(c.sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 1u);  // v>30 -> {4,5}; k<5 -> {4}
}

// ------------------------------------- whole-suite zero-F-error gate

TEST(WorkloadAnalysis, AllWorkloadsCompileWithZeroFErrors) {
  Session session;
  ASSERT_TRUE(workloads::tpch::Populate(&session.db(), 0.001).ok());
  namespace ds = workloads::datasci;
  for (const auto& populate :
       {ds::PopulateCrimeIndex, ds::PopulateBirthAnalysis, ds::PopulateN3,
        ds::PopulateN9, ds::PopulateHybrid}) {
    ASSERT_TRUE(populate(&session.db(), 32, 7).ok());
  }
  ASSERT_TRUE(ds::PopulateCovariance(&session.db(), 32, 4, 0.5).ok());

  std::vector<std::pair<std::string, std::string>> sources;
  for (const auto& q : workloads::tpch::AllQueries()) {
    sources.emplace_back(q.name, q.source);
  }
  sources.emplace_back("crime_index", ds::CrimeIndexSource());
  sources.emplace_back("birth_analysis", ds::BirthAnalysisSource());
  sources.emplace_back("n3", ds::N3Source());
  sources.emplace_back("n9", ds::N9Source());
  sources.emplace_back("hybrid_matmul", ds::HybridMatMulSource(false));
  sources.emplace_back("hybrid_covar", ds::HybridCovarSource(false));
  sources.emplace_back("covar_dense", ds::CovarDenseSource());
  sources.emplace_back("covar_sparse", ds::CovarSparseSource());
  ASSERT_EQ(sources.size(), 30u);

  for (const auto& [name, source] : sources) {
    RunOptions options;
    options.use_plan_cache = false;
    auto compiled = session.Compile(source, options);
    ASSERT_TRUE(compiled.ok()) << name << ": "
                               << compiled.status().ToString();
    for (const Diagnostic& d : compiled->diagnostics) {
      if (d.code.rfind("F", 0) == 0) {
        EXPECT_NE(d.severity, Severity::kError)
            << name << ": " << d.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace pytond::frontend::check
