#include <gtest/gtest.h>

#include "runtime/eager.h"
#include "runtime/interpreter.h"
#include "storage/catalog.h"

namespace pytond::runtime {
namespace {

Table SampleFrame() {
  Table t;
  EXPECT_TRUE(t.AddColumn("k", Column::Int64({1, 2, 2, 3})).ok());
  EXPECT_TRUE(
      t.AddColumn("g", Column::String({"a", "b", "a", "b"})).ok());
  EXPECT_TRUE(t.AddColumn("v", Column::Float64({10, 20, 30, 40})).ok());
  return t;
}

TEST(EagerOpsTest, BinaryOpArithmeticAndComparison) {
  Column a = Column::Int64({1, 2, 3});
  Column b = Column::Int64({10, 20, 30});
  auto sum = eager::BinaryOp("+", a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->ints()[2], 33);
  auto div = eager::BinaryOp("/", a, b);
  ASSERT_TRUE(div.ok());
  EXPECT_EQ(div->type(), DataType::kFloat64);
  auto lt = eager::BinaryOp("<", a, b);
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE(lt->bools()[0]);
}

TEST(EagerOpsTest, BinaryOpNullsDisqualifyComparisons) {
  Column a = Column::Float64({1, 2});
  a.AppendNull();
  Column b = eager::Broadcast(Value::Float64(1.5), 3, DataType::kFloat64);
  auto lt = eager::BinaryOp("<", a, b);
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE(lt->bools()[0]);
  EXPECT_FALSE(lt->bools()[1]);
  EXPECT_FALSE(lt->bools()[2]);  // NULL compares false
}

TEST(EagerOpsTest, FilterAndProject) {
  Table t = SampleFrame();
  Column mask = Column::Bool({1, 0, 1, 0});
  Table f = eager::Filter(t, mask);
  EXPECT_EQ(f.num_rows(), 2u);
  auto p = eager::Project(f, {"v", "k"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->schema().names[0], "v");
  EXPECT_FALSE(eager::Project(t, {"nope"}).ok());
}

TEST(EagerOpsTest, MergeInnerWithSuffixes) {
  Table t = SampleFrame();
  auto m = eager::Merge(t, t, {"k"}, {"k"}, "inner");
  ASSERT_TRUE(m.ok());
  // k=2 matches 2x2 = 4 pairs, k=1 and k=3 one each -> 6 rows.
  EXPECT_EQ(m->num_rows(), 6u);
  EXPECT_GE(m->schema().Find("g_x"), 0);
  EXPECT_GE(m->schema().Find("v_y"), 0);
  EXPECT_EQ(m->schema().Find("k_x"), -1);  // shared key kept once
}

TEST(EagerOpsTest, MergeOuterPadsNulls) {
  Table t = SampleFrame();
  Table u;
  ASSERT_TRUE(u.AddColumn("k", Column::Int64({2, 9})).ok());
  ASSERT_TRUE(u.AddColumn("w", Column::Float64({1, 2})).ok());
  auto left = eager::Merge(t, u, {"k"}, {"k"}, "left");
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->num_rows(), 4u);  // rows 2,2 match; 1,3 padded
  auto outer = eager::Merge(t, u, {"k"}, {"k"}, "outer");
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->num_rows(), 5u);  // + unmatched right (k=9)
  // The shared key column takes the right value on right-padding rows.
  bool found9 = false;
  for (size_t i = 0; i < outer->num_rows(); ++i) {
    if (outer->column(0).Get(i) == Value::Int64(9)) found9 = true;
  }
  EXPECT_TRUE(found9);
}

TEST(EagerOpsTest, GroupByAggAllFunctions) {
  Table t = SampleFrame();
  auto g = eager::GroupByAgg(t, {"g"},
                             {{"s", "v", "sum"},
                              {"mn", "v", "min"},
                              {"mx", "v", "max"},
                              {"avg", "v", "mean"},
                              {"n", "v", "count"},
                              {"uk", "k", "nunique"}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 2u);
  // Group "a": rows v=10,30, k=1,2.
  size_t a_row = g->column(0).Get(0).AsString() == "a" ? 0 : 1;
  EXPECT_EQ(g->column(1).Get(a_row), Value::Float64(40.0));
  EXPECT_EQ(g->column(2).Get(a_row), Value::Float64(10.0));
  EXPECT_EQ(g->column(3).Get(a_row), Value::Float64(30.0));
  EXPECT_EQ(g->column(4).Get(a_row), Value::Float64(20.0));
  EXPECT_EQ(g->column(5).Get(a_row), Value::Int64(2));
  EXPECT_EQ(g->column(6).Get(a_row), Value::Int64(2));
}

TEST(EagerOpsTest, GlobalAggOnEmptyInput) {
  Table t(SampleFrame().schema());
  auto g = eager::GroupByAgg(t, {}, {{"n", "v", "count"}, {"s", "v", "sum"}});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_rows(), 1u);
  EXPECT_EQ(g->column(0).Get(0), Value::Int64(0));
  EXPECT_TRUE(g->column(1).Get(0).is_null());
}

TEST(EagerOpsTest, SortHeadUniqueIsin) {
  Table t = SampleFrame();
  auto s = eager::SortValues(t, {"v"}, {false});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->column(2).Get(0), Value::Float64(40.0));
  Table h = eager::Head(*s, 2);
  EXPECT_EQ(h.num_rows(), 2u);
  auto u = eager::Unique(t, "g");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->num_rows(), 2u);
  Column probe = Column::Int64({2, 5});
  auto mask = eager::IsinMask(t.column(0), probe);
  ASSERT_TRUE(mask.ok());
  EXPECT_FALSE(mask->bools()[0]);
  EXPECT_TRUE(mask->bools()[1]);
}

TEST(EagerOpsTest, PivotTable) {
  Table t = SampleFrame();
  auto p = eager::PivotTable(t, "k", "g", "v", {"a", "b"});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->num_columns(), 3u);  // k, p_a, p_b
  // k=2 appears with g=b(20) and g=a(30).
  for (size_t i = 0; i < p->num_rows(); ++i) {
    if (p->column(0).Get(i) == Value::Int64(2)) {
      EXPECT_EQ(p->column(1).Get(i), Value::Float64(30.0));
      EXPECT_EQ(p->column(2).Get(i), Value::Float64(20.0));
    }
  }
}

TEST(EagerOpsTest, DenseEinsumKernels) {
  Table m;
  ASSERT_TRUE(m.AddColumn("id", Column::Int64({0, 1})).ok());
  ASSERT_TRUE(m.AddColumn("c0", Column::Float64({1, 3})).ok());
  ASSERT_TRUE(m.AddColumn("c1", Column::Float64({2, 4})).ok());
  auto total = eager::EinsumDense("ij->", {&m});
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->column(0).Get(0), Value::Float64(10.0));
  auto rows = eager::EinsumDense("ij->i", {&m});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->column(1).Get(1), Value::Float64(7.0));
  auto gram = eager::EinsumDense("ij,ik->jk", {&m, &m});
  ASSERT_TRUE(gram.ok());
  EXPECT_EQ(gram->column(1).Get(0), Value::Float64(10.0));   // 1+9
  EXPECT_EQ(gram->column(2).Get(1), Value::Float64(20.0));   // 4+16
  EXPECT_FALSE(eager::EinsumDense("xyz->", {&m}).ok());
}

TEST(EagerOpsTest, SparseEinsumDiagonalRepeatedIndex) {
  Table coo;
  ASSERT_TRUE(coo.AddColumn("row_id", Column::Int64({0, 0, 1})).ok());
  ASSERT_TRUE(coo.AddColumn("col_id", Column::Int64({0, 1, 1})).ok());
  ASSERT_TRUE(coo.AddColumn("val", Column::Float64({5, 7, 9})).ok());
  // Trace: sum of the diagonal = 5 + 9.
  auto trace = eager::EinsumSparse("ii->", {&coo});
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->num_rows(), 1u);
  EXPECT_EQ(trace->column(0).Get(0), Value::Float64(14.0));
}

TEST(InterpreterTest, RunsSimplePipeline) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", SampleFrame()).ok());
  auto r = InterpretSource(R"(
@pytond()
def f(t):
    big = t[t.v >= 20]
    g = big.groupby(['g']).agg(s=('v', 'sum'))
    out = g.sort_values(by=['g'])
    return out
)",
                           catalog);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->column(1).Get(0), Value::Float64(30.0));
  EXPECT_EQ(r->column(1).Get(1), Value::Float64(60.0));
}

TEST(InterpreterTest, ReportsMissingTable) {
  Catalog catalog;
  auto r = InterpretSource("@pytond()\ndef f(zzz):\n    return zzz\n",
                           catalog);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterTest, ReportsUnsupportedMethod) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", SampleFrame()).ok());
  auto r = InterpretSource(
      "@pytond()\ndef f(t):\n    v = t.rolling(3)\n    return v\n", catalog);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace pytond::runtime
