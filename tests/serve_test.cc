// Serve-path tests: auto-parameterization (marking + skeleton keys),
// PREPARE/EXECUTE semantics (cache hits across literal variation,
// type-checked rebinding, literal-path fallback), admission control
// (bounded queue rejections, memory brake), and ≥8 racing connections
// whose every result must equal a serially computed oracle exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "frontend/parameterize.h"
#include "frontend/pylang/parser.h"
#include "serve/connection_manager.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond {
namespace {

// ---------------------------------------------------------------------------
// Parameterizer unit tests (no database needed).

std::vector<frontend::ParamSlot> Parameterize(const std::string& source,
                                              std::string* key = nullptr) {
  auto mod = frontend::py::ParseModule(source);
  EXPECT_TRUE(mod.ok()) << mod.status().ToString();
  EXPECT_EQ(mod->functions.size(), 1u);
  auto slots = frontend::ParameterizeFunction(&mod->functions[0]);
  if (key != nullptr) *key = frontend::SkeletonKey(mod->functions[0]);
  return slots;
}

TEST(ParameterizerTest, MarksFilterLiteralsInOrder) {
  auto slots = Parameterize(R"(
@pytond()
def q(t):
    v = t[(t.x > 3) & (t.name == 'acme') & (t.score <= 0.5)]
    return v
)");
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].type, DataType::kInt64);
  EXPECT_EQ(slots[0].seed.AsInt64(), 3);
  EXPECT_EQ(slots[1].type, DataType::kString);
  EXPECT_EQ(slots[1].seed.AsString(), "acme");
  EXPECT_EQ(slots[2].type, DataType::kFloat64);
  EXPECT_DOUBLE_EQ(slots[2].seed.AsFloat64(), 0.5);
}

TEST(ParameterizerTest, ReachesThroughArithmeticAndUnaryMinus) {
  auto slots = Parameterize(R"(
@pytond()
def q(t):
    v = t[t.x * 2 > -5]
    return v
)");
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].seed.AsInt64(), 2);
  EXPECT_EQ(slots[1].seed.AsInt64(), 5);  // the literal under the minus
}

TEST(ParameterizerTest, LeavesStructuralLiteralsAlone) {
  // Column names, groupby/sort lists, agg kwargs, head(n): all structural
  // — the translator reads them at compile time, so none may become slots.
  auto slots = Parameterize(R"(
@pytond()
def q(t):
    v = t[t.qty > 10]
    g = v.groupby(['a', 'b']).agg(total=('qty', 'sum'))
    s = g.sort_values(by=['a'])
    return s.head(7)
)");
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].seed.AsInt64(), 10);
}

TEST(ParameterizerTest, SkeletonKeyStableAcrossLiteralVariation) {
  std::string key1, key2, key3;
  auto s1 = Parameterize(R"(
@pytond()
def q(t):
    v = t[(t.x > 3) & (t.d >= '1994-01-01')]
    return v
)",
                         &key1);
  auto s2 = Parameterize(R"(
@pytond()
def q(t):
    v = t[(t.x > 42) & (t.d >= '1997-06-15')]
    return v
)",
                         &key2);
  // Changing the *shape* (comparison direction) must change the key.
  Parameterize(R"(
@pytond()
def q(t):
    v = t[(t.x < 3) & (t.d >= '1994-01-01')]
    return v
)",
               &key3);
  ASSERT_EQ(s1.size(), 2u);
  ASSERT_EQ(s2.size(), 2u);
  EXPECT_EQ(key1, key2);
  EXPECT_NE(key1, key3);
  EXPECT_NE(key1.find("$p0"), std::string::npos);
  EXPECT_NE(key1.find("$s1"), std::string::npos);  // string slots tag $s
}

TEST(ParameterizerTest, TypeTagsKeepIntAndFloatKeysApart) {
  // 3 and 3.0 compile to different slot types; their skeletons must not
  // collide or an int-compiled plan would serve float bindings.
  std::string int_key, float_key;
  Parameterize(R"(
@pytond()
def q(t):
    v = t[t.x > 3]
    return v
)",
               &int_key);
  Parameterize(R"(
@pytond()
def q(t):
    v = t[t.x > 3.0]
    return v
)",
               &float_key);
  EXPECT_NE(int_key, float_key);
}

// ---------------------------------------------------------------------------
// PREPARE/EXECUTE over a populated database.

class ServeTest : public ::testing::Test {
 protected:
  static std::shared_ptr<engine::Database> db_;

  static void SetUpTestSuite() {
    db_ = std::make_shared<engine::Database>();
    ASSERT_TRUE(workloads::tpch::Populate(db_.get(), 0.01).ok());
    ASSERT_TRUE(workloads::datasci::PopulateCrimeIndex(db_.get(), 6000).ok());
    ASSERT_TRUE(workloads::datasci::PopulateHybrid(db_.get(), 6000).ok());
  }
  static void TearDownTestSuite() { db_.reset(); }

  static std::string Q6Variant(const std::string& lo_date,
                               const std::string& hi_date, double lo_disc,
                               double hi_disc, int qty) {
    return std::string(R"(
@pytond()
def q6(lineitem):
    f = lineitem[(lineitem.l_shipdate >= ')") +
           lo_date + R"(') &
                 (lineitem.l_shipdate < ')" +
           hi_date + R"(') &
                 (lineitem.l_discount >= )" +
           std::to_string(lo_disc) + R"() &
                 (lineitem.l_discount <= )" +
           std::to_string(hi_disc) + R"() &
                 (lineitem.l_quantity < )" +
           std::to_string(qty) + R"()]
    f['rev'] = f.l_extendedprice * f.l_discount
    out = f.agg(revenue=('rev', 'sum'))
    return out
)";
  }
};

std::shared_ptr<engine::Database> ServeTest::db_;

TEST_F(ServeTest, PreparedMatchesAdHocBitwise) {
  Session session(db_);
  auto ps = session.Prepare(workloads::tpch::GetQuery(6).source);
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  EXPECT_TRUE(ps->parameterized());
  EXPECT_EQ(ps->num_params(), 5u);

  auto prepared = ps->Execute();
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto adhoc = session.Run(workloads::tpch::GetQuery(6).source);
  ASSERT_TRUE(adhoc.ok()) << adhoc.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**prepared, **adhoc, 0.0, &diff))
      << diff;
}

TEST_F(ServeTest, LiteralVariationHitsOneCompiledPlan) {
  Session session(db_);
  session.ClearPlanCache();
  const std::string variants[3][2] = {
      {"1994-01-01", "1995-01-01"},
      {"1995-01-01", "1996-01-01"},
      {"1996-01-01", "1997-01-01"},
  };
  uint64_t hits_before =
      db_->metrics().counter("tond_serve_prepared_hits_total").Value();
  for (int i = 0; i < 3; ++i) {
    const std::string src =
        Q6Variant(variants[i][0], variants[i][1], 0.05, 0.07, 24);
    auto ps = session.Prepare(src);
    ASSERT_TRUE(ps.ok()) << ps.status().ToString();
    ASSERT_TRUE(ps->parameterized());
    // Each variant's prepared result equals its own ad-hoc compile (the
    // cache must serve the right *bindings*, not the first prepare's).
    auto got = ps->Execute();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    RunOptions no_cache;
    no_cache.use_plan_cache = false;
    auto want = session.Run(src, no_cache);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    std::string diff;
    EXPECT_TRUE(Table::UnorderedEquals(**got, **want, 0.0, &diff))
        << "variant " << i << ": " << diff;
  }
  // One skeleton entry; prepares 2 and 3 were hits.
  EXPECT_EQ(session.plan_cache_stats().entries, 1u);
  EXPECT_EQ(
      db_->metrics().counter("tond_serve_prepared_hits_total").Value() -
          hits_before,
      2u);
}

TEST_F(ServeTest, ExecuteRebindsWithoutRecompiling) {
  Session session(db_);
  session.ClearPlanCache();
  auto ps = session.Prepare(workloads::tpch::GetQuery(6).source);
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  ASSERT_EQ(ps->num_params(), 5u);

  // Rebind the quantity bound: must equal an ad-hoc run of the edited
  // source, and must not add a cache entry.
  std::vector<Value> params = ps->defaults();
  params[4] = Value::Int64(10);
  auto got = ps->Execute(params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  RunOptions no_cache;
  no_cache.use_plan_cache = false;
  auto want = session.Run(
      Q6Variant("1994-01-01", "1995-01-01", 0.05, 0.07, 10), no_cache);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**got, **want, 0.0, &diff)) << diff;
  EXPECT_EQ(session.plan_cache_stats().entries, 1u);
}

TEST_F(ServeTest, ExecuteTypeChecksBindings) {
  Session session(db_);
  auto ps = session.Prepare(workloads::tpch::GetQuery(6).source);
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  std::vector<Value> params = ps->defaults();

  // Arity.
  std::vector<Value> short_params(params.begin(), params.end() - 1);
  auto r1 = ps->Execute(short_params);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  // String into a float64 slot.
  params[2] = Value::String("oops");
  auto r2 = ps->Execute(params);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Int into a float64 slot promotes.
  params = ps->defaults();
  params[2] = Value::Int64(0);
  auto r3 = ps->Execute(params);
  EXPECT_TRUE(r3.ok()) << r3.status().ToString();
}

TEST_F(ServeTest, NothingToParameterizeFallsBackToLiteralPath) {
  Session session(db_);
  session.ClearPlanCache();
  const std::string src = R"(
@pytond()
def all_rows(nation):
    out = nation.head(5)
    return out
)";
  auto ps = session.Prepare(src);
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  EXPECT_FALSE(ps->parameterized());
  EXPECT_EQ(ps->num_params(), 0u);
  auto got = ps->Execute();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = session.Run(src);
  ASSERT_TRUE(want.ok());
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**got, **want, 0.0, &diff)) << diff;
}

// Satellite regression: the plan-cache key must include the pipeline
// mode. Same source, pipeline on vs off => two entries, zero hits.
TEST_F(ServeTest, PipelineModeSplitsCacheKey) {
  Session session(db_);
  session.ClearPlanCache();
  const std::string src = workloads::tpch::GetQuery(1).source;
  RunOptions on;
  on.pipeline = true;
  RunOptions off;
  off.pipeline = false;
  ASSERT_TRUE(session.Run(src, on).ok());
  PlanCacheStats mid = session.plan_cache_stats();
  ASSERT_TRUE(session.Run(src, off).ok());
  PlanCacheStats after = session.plan_cache_stats();
  EXPECT_EQ(after.entries, mid.entries + 1);
  EXPECT_EQ(after.hits, mid.hits);  // the off-run must NOT hit the on-plan
  // And the same mode again is a hit.
  ASSERT_TRUE(session.Run(src, off).ok());
  EXPECT_EQ(session.plan_cache_stats().hits, after.hits + 1);
  EXPECT_EQ(session.plan_cache_stats().entries, after.entries);
}

// num_threads stays execution-only: not part of the key.
TEST_F(ServeTest, ThreadCountDoesNotSplitCacheKey) {
  Session session(db_);
  session.ClearPlanCache();
  const std::string src = workloads::tpch::GetQuery(1).source;
  for (int threads : {1, 2, 4}) {
    RunOptions o;
    o.num_threads = threads;
    ASSERT_TRUE(session.Run(src, o).ok());
  }
  EXPECT_EQ(session.plan_cache_stats().entries, 1u);
  EXPECT_EQ(session.plan_cache_stats().hits, 2u);
}

// ---------------------------------------------------------------------------
// Admission control.

TEST_F(ServeTest, TinyQueueRejectsOverload) {
  serve::ServeConfig cfg;
  cfg.max_in_flight = 1;
  cfg.max_queue = 1;
  cfg.queue_timeout_ms = 2000;
  serve::ConnectionManager mgr(db_, cfg);

  // One slot, one queue seat, 6 simultaneous clients: at most two are
  // inside the gate at any instant, so with all six arriving before the
  // first finishes, at least one must bounce with queue_full. A start
  // barrier makes the simultaneous arrival deterministic enough.
  constexpr int kClients = 6;
  std::atomic<int> ready{0};
  std::atomic<int> rejected{0};
  std::atomic<int> succeeded{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      auto conn = mgr.Connect();
      ++ready;
      while (ready.load() < kClients) std::this_thread::yield();
      auto r = conn->RunAdHoc(workloads::tpch::GetQuery(1).source);
      if (r.ok()) {
        ++succeeded;
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kRejected)
            << r.status().ToString();
        ++rejected;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(succeeded.load() + rejected.load(), kClients);
  EXPECT_GE(succeeded.load(), 1);
  serve::ServeStats stats = mgr.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(succeeded.load()));
  EXPECT_EQ(stats.rejected_queue_full + stats.rejected_timeout,
            static_cast<uint64_t>(rejected.load()));
  EXPECT_GE(stats.rejected_queue_full, 1u);
}

TEST_F(ServeTest, MemoryBrakeRejects) {
  serve::ServeConfig cfg;
  cfg.memory_limit_bytes = 1;  // everything is over budget
  serve::ConnectionManager mgr(db_, cfg);
  auto conn = mgr.Connect();
  {
    // The brake reads the db-wide accountant, which only queries (and
    // other database-lifetime holders) charge — pin it over budget for
    // the duration of the attempt.
    obs::ScopedCharge pressure(&mgr.db().memory(), 1 << 20);
    ASSERT_GT(mgr.db().memory().current(), 1u);
    auto r = conn->RunAdHoc(workloads::tpch::GetQuery(1).source);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kRejected);
    EXPECT_EQ(mgr.stats().rejected_memory, 1u);
    EXPECT_EQ(mgr.db()
                  .metrics()
                  .counter("tond_serve_rejected_memory_total")
                  .Value(),
              1u);
  }
  // Pressure released => the same query admits.
  auto r2 = conn->RunAdHoc(workloads::tpch::GetQuery(1).source);
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
}

// ---------------------------------------------------------------------------
// Racing connections vs a serial oracle.

TEST_F(ServeTest, EightRacingConnectionsMatchSerialOracle) {
  // Oracle results computed serially, single-threaded, cache off — the
  // strictest reference available.
  const std::vector<std::string> sources = {
      workloads::tpch::GetQuery(1).source,
      workloads::tpch::GetQuery(6).source,
      workloads::tpch::GetQuery(14).source,
      workloads::datasci::CrimeIndexSource(),
  };
  std::vector<std::shared_ptr<const Table>> oracle;
  {
    Session serial(db_);
    RunOptions o;
    o.use_plan_cache = false;
    for (const auto& src : sources) {
      auto r = serial.Run(src, o);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      oracle.push_back(*r);
    }
  }

  const uint64_t mem_before = db_->memory().current();
  serve::ServeConfig cfg;
  cfg.max_in_flight = 4;
  cfg.max_queue = 64;
  cfg.queue_timeout_ms = 30000;
  serve::ConnectionManager mgr(db_, cfg);

  constexpr int kConnections = 8;
  constexpr int kQueriesEach = 8;
  std::vector<std::string> errors(kConnections);
  std::vector<std::thread> clients;
  for (int c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      auto conn = mgr.Connect();
      for (int i = 0; i < kQueriesEach; ++i) {
        const size_t w = (c + i) % sources.size();
        auto r = [&]() -> Result<std::shared_ptr<const Table>> {
          switch ((c + i) % 3) {
            case 0:  // ad-hoc lane
              return conn->RunAdHoc(sources[w]);
            case 1:  // PREPARE + default EXECUTE lane
              return conn->Run(sources[w]);
            default: {  // explicit prepared-handle lane
              PYTOND_ASSIGN_OR_RETURN(PreparedStatement ps,
                                      conn->Prepare(sources[w]));
              return conn->Execute(ps);
            }
          }
        }();
        if (!r.ok()) {
          errors[c] = "query " + std::to_string(w) + ": " +
                      r.status().ToString();
          return;
        }
        std::string diff;
        if (!Table::UnorderedEquals(**r, *oracle[w], 0.0, &diff)) {
          errors[c] = "mismatch on " + std::to_string(w) + ": " + diff;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kConnections; ++c) {
    EXPECT_EQ(errors[c], "") << "connection " << c;
  }
  serve::ServeStats stats = mgr.stats();
  EXPECT_EQ(stats.admitted,
            static_cast<uint64_t>(kConnections * kQueriesEach));
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.rejected_timeout, 0u);
  // Every query's transient memory must have been released: the db-wide
  // accountant is back to the base tables it held before the storm.
  EXPECT_EQ(db_->memory().current(), mem_before);
}

}  // namespace
}  // namespace pytond
