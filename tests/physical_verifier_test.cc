// Physical plan & pipeline verifier (analysis/physical/, P-series):
//  - A seeded plan-mutation fuzzer: every workload's compiled SQL is
//    bound, optimized, and decomposed, then corrupted one structural
//    mutation at a time (drop column, retype column, swap sink kind,
//    break the pipeline DAG, kill a live liveness mask) — the verifier
//    must catch ≥95% of applied mutations overall and at least one per
//    class. Seeds make every failure reproducible.
//  - Unperturbed coverage: all 30 workloads execute P-clean with
//    verify_plans on, in both pipeline modes (the engine wiring fails
//    the query on any violation, so success == clean).
//  - Param-slot tier (P040-P043) over hand-built TondIR and skeleton
//    SQL, including the folded-parameter case the plan cache must never
//    serve.
//  - Build-time op_masks: masks ride on PipelineDesc, stay parallel to
//    the op chain, and the verifier's independent liveness recompute
//    agrees with the builder's.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "analysis/physical/physical.h"
#include "core/session.h"
#include "engine/exec/pipeline.h"
#include "engine/plan/binder.h"
#include "engine/plan/optimizer.h"
#include "engine/sql/parser.h"
#include "tondir/ir.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond {
namespace {

namespace physical = analysis::physical;
using analysis::Diagnostic;
using engine::LogicalPlan;
using engine::PipelinePlan;
using engine::PipelineSinkKind;
using engine::PlanPtr;

bool HasErrorDiags(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == analysis::Severity::kError) return true;
  }
  return false;
}

// ===================================================================
// Shared fixture: one populated database, 30 compiled workloads
// ===================================================================

struct Workload {
  std::string name;
  const char* source;
};

std::vector<Workload> AllWorkloads() {
  namespace ds = workloads::datasci;
  std::vector<Workload> out;
  for (const auto& q : workloads::tpch::AllQueries()) {
    out.push_back({q.name, q.source});
  }
  out.push_back({"crime_index", ds::CrimeIndexSource()});
  out.push_back({"birth_analysis", ds::BirthAnalysisSource()});
  out.push_back({"n3", ds::N3Source()});
  out.push_back({"n9", ds::N9Source()});
  out.push_back({"hybrid_matmul", ds::HybridMatMulSource(false)});
  out.push_back({"hybrid_covar", ds::HybridCovarSource(false)});
  out.push_back({"covar_dense", ds::CovarDenseSource()});
  out.push_back({"covar_sparse", ds::CovarSparseSource()});
  return out;
}

class PhysicalVerifierTest : public ::testing::Test {
 protected:
  static Session* session_;

  static void SetUpTestSuite() {
    session_ = new Session();
    ASSERT_TRUE(workloads::tpch::Populate(&session_->db(), 0.01).ok());
    namespace ds = workloads::datasci;
    ASSERT_TRUE(ds::PopulateCrimeIndex(&session_->db(), 256).ok());
    ASSERT_TRUE(ds::PopulateBirthAnalysis(&session_->db(), 256).ok());
    ASSERT_TRUE(ds::PopulateN3(&session_->db(), 256).ok());
    ASSERT_TRUE(ds::PopulateN9(&session_->db(), 256).ok());
    ASSERT_TRUE(ds::PopulateHybrid(&session_->db(), 256).ok());
    ASSERT_TRUE(
        ds::PopulateCovariance(&session_->db(), 64, 4, 0.5).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
};

Session* PhysicalVerifierTest::session_ = nullptr;

// ===================================================================
// Schema-only binding of compiled SQL (CTEs bound in order, their
// output schemas registered — nothing executes)
// ===================================================================

struct BoundQuery {
  std::vector<PlanPtr> plans;  // CTE plans in order, then the final plan
  std::map<std::string, Schema> temp_schemas;
  physical::VerifyOptions vopts;  // resolver over catalog + temps
};

Result<BoundQuery> BindSql(const std::string& sql, const Catalog& catalog) {
  PYTOND_ASSIGN_OR_RETURN(engine::sql::SelectPtr stmt,
                          engine::sql::ParseSql(sql));
  auto bound = std::make_shared<BoundQuery>();
  engine::BinderCatalog bc;
  bc.schema = [bound, &catalog](const std::string& name) -> const Schema* {
    auto it = bound->temp_schemas.find(name);
    if (it != bound->temp_schemas.end()) return &it->second;
    const Table* t = catalog.GetTable(name);
    return t == nullptr ? nullptr : &t->schema();
  };
  bc.row_count = [](const std::string&) { return 1000.0; };

  auto bind_one = [&](const engine::sql::SelectStmt& s)
      -> Result<PlanPtr> {
    engine::sql::SelectStmt core = s;
    core.ctes.clear();
    PYTOND_ASSIGN_OR_RETURN(
        PlanPtr plan,
        BindSelect(core, bc, engine::BackendProfile::kVectorized));
    PYTOND_RETURN_IF_ERROR(OptimizePlan(
        plan, engine::BackendProfile::kVectorized, bc.row_count));
    return plan;
  };

  for (const auto& cte : stmt->ctes) {
    if (cte.select->is_values()) {
      Schema s;
      const auto& rows = cte.select->values_rows;
      for (size_t i = 0; i < rows[0].size(); ++i) {
        DataType ty = DataType::kInt64;
        for (const auto& row : rows) {
          if (!row[i].is_null()) {
            ty = row[i].type();
            break;
          }
        }
        s.Add(i < cte.column_names.size() ? cte.column_names[i]
                                          : "col" + std::to_string(i),
              ty);
      }
      bound->temp_schemas[cte.name] = s;
      continue;
    }
    PYTOND_ASSIGN_OR_RETURN(PlanPtr plan, bind_one(*cte.select));
    Schema s = plan->schema;
    for (size_t i = 0; i < cte.column_names.size() && i < s.names.size();
         ++i) {
      s.names[i] = cte.column_names[i];
    }
    bound->temp_schemas[cte.name] = s;
    bound->plans.push_back(std::move(plan));
  }
  PYTOND_ASSIGN_OR_RETURN(PlanPtr final_plan, bind_one(*stmt));
  bound->plans.push_back(std::move(final_plan));
  bound->vopts.table_schema = bc.schema;

  BoundQuery out = std::move(*bound);
  // The resolver captured `bound`; rebuild it over the returned object.
  // (Moved-from maps stay valid; re-point the lambda at `out` copies.)
  return out;
}

/// Re-binds the schema resolver after BoundQuery is moved into place.
void FixResolver(BoundQuery* bq, const Catalog& catalog) {
  bq->vopts.table_schema =
      [bq, &catalog](const std::string& name) -> const Schema* {
    auto it = bq->temp_schemas.find(name);
    if (it != bq->temp_schemas.end()) return &it->second;
    const Table* t = catalog.GetTable(name);
    return t == nullptr ? nullptr : &t->schema();
  };
}

// ===================================================================
// Seeded mutation classes
// ===================================================================

void CollectNodes(LogicalPlan* p, std::vector<LogicalPlan*>* out) {
  out->push_back(p);
  for (auto& c : p->children) CollectNodes(c.get(), out);
}

enum class Mutation { kDropColumn, kRetypeColumn, kSwapSink, kBreakDag,
                      kKillMask };

const char* MutationName(Mutation m) {
  switch (m) {
    case Mutation::kDropColumn: return "drop_column";
    case Mutation::kRetypeColumn: return "retype_column";
    case Mutation::kSwapSink: return "swap_sink";
    case Mutation::kBreakDag: return "break_dag";
    case Mutation::kKillMask: return "kill_mask";
  }
  return "?";
}

/// Applies a plan-tier mutation to one node of one plan. Returns false
/// when no node could be mutated (nothing applied — not a detection
/// miss). Leaves are skipped: a scan whose schema drifts from the
/// catalog is only a P006 warning (temp tables legitimately rename), so
/// the fuzzer measures detection over nodes the verifier must hard-fail.
bool MutatePlans(Mutation m, std::mt19937* rng,
                 std::vector<PlanPtr>* plans) {
  std::vector<LogicalPlan*> nodes;
  for (auto& p : *plans) CollectNodes(p.get(), &nodes);
  std::shuffle(nodes.begin(), nodes.end(), *rng);
  for (LogicalPlan* n : nodes) {
    if (n->schema.num_columns() == 0 || n->children.empty()) continue;
    if (m == Mutation::kDropColumn) {
      n->schema.names.pop_back();
      n->schema.types.pop_back();
      return true;
    }
    if (m == Mutation::kRetypeColumn) {
      size_t c = (*rng)() % n->schema.num_columns();
      n->schema.types[c] = n->schema.types[c] == DataType::kString
                               ? DataType::kInt64
                               : DataType::kString;
      return true;
    }
  }
  return false;
}

/// Applies a pipeline-tier mutation to one PipelinePlan. Returns false
/// when inapplicable.
bool MutatePipelines(Mutation m, std::mt19937* rng, PipelinePlan* pp) {
  auto& ps = pp->pipelines;
  if (ps.empty()) return false;
  if (m == Mutation::kSwapSink) {
    auto& d = ps[(*rng)() % ps.size()];
    d.sink = d.sink == PipelineSinkKind::kResult
                 ? PipelineSinkKind::kAggregate
                 : PipelineSinkKind::kResult;
    return true;
  }
  if (m == Mutation::kBreakDag) {
    auto& d = ps[(*rng)() % ps.size()];
    switch ((*rng)() % 3) {
      case 0: d.deps.push_back(d.id); break;         // self-dependency
      case 1: d.deps.push_back(static_cast<int>(ps.size())); break;
      default:
        if (!d.deps.empty()) {
          d.deps.clear();  // undeclared reads (build/source inputs)
        } else {
          d.deps.push_back(d.id);
        }
        break;
    }
    return true;
  }
  if (m == Mutation::kKillMask) {
    // Kill the last op's outputs in a pipeline whose sink consumes full
    // rows (result/serial seed all-live, so an all-dead mask is always a
    // genuine corruption there).
    std::vector<size_t> order(ps.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), *rng);
    for (size_t i : order) {
      auto& d = ps[i];
      if (d.sink != PipelineSinkKind::kResult &&
          d.sink != PipelineSinkKind::kSerial) {
        continue;
      }
      if (d.ops.empty()) continue;
      size_t cols = d.ops.back()->schema.num_columns();
      if (cols == 0) continue;
      d.op_masks[d.ops.size() - 1].assign(cols, 0);
      return true;
    }
    return false;
  }
  return false;
}

// ===================================================================
// The fuzzer
// ===================================================================

TEST_F(PhysicalVerifierTest, SeededMutationFuzzerCatches95Percent) {
  const std::vector<Workload> workloads = AllWorkloads();
  const Mutation kClasses[] = {Mutation::kDropColumn,
                               Mutation::kRetypeColumn, Mutation::kSwapSink,
                               Mutation::kBreakDag, Mutation::kKillMask};
  std::map<Mutation, int> applied, detected;
  int total_applied = 0;
  int total_detected = 0;

  for (const Workload& w : workloads) {
    auto compiled = session_->Compile(w.source);
    ASSERT_TRUE(compiled.ok()) << w.name << ": "
                               << compiled.status().message();
    for (Mutation m : kClasses) {
      for (unsigned seed = 1; seed <= 3; ++seed) {
        // Fresh bind per mutation: corruption must not accumulate.
        auto bq = BindSql(compiled->sql, session_->db().catalog());
        ASSERT_TRUE(bq.ok()) << w.name << ": " << bq.status().message();
        FixResolver(&*bq, session_->db().catalog());
        std::mt19937 rng(seed * 7919 + static_cast<unsigned>(m) * 104729);

        bool was_applied = false;
        bool was_detected = false;
        if (m == Mutation::kDropColumn || m == Mutation::kRetypeColumn) {
          was_applied = MutatePlans(m, &rng, &bq->plans);
          if (was_applied) {
            for (const PlanPtr& p : bq->plans) {
              was_detected =
                  was_detected ||
                  HasErrorDiags(physical::VerifyPlan(*p, bq->vopts));
            }
          }
        } else {
          // Pipeline-tier: mutate the decomposition of one sub-plan
          // (preferring one with the richest pipeline structure).
          PlanPtr target = bq->plans.back();
          PipelinePlan best = BuildPipelines(*target);
          for (const PlanPtr& p : bq->plans) {
            PipelinePlan pp = BuildPipelines(*p);
            if (pp.pipelines.size() > best.pipelines.size()) {
              best = std::move(pp);
              target = p;
            }
          }
          ASSERT_FALSE(HasErrorDiags(
              physical::VerifyPipelines(*target, best)))
              << w.name << ": pipeline plan not clean before mutation";
          was_applied = MutatePipelines(m, &rng, &best);
          if (was_applied) {
            was_detected = HasErrorDiags(
                physical::VerifyPipelines(*target, best));
          }
        }
        if (!was_applied) continue;
        applied[m]++;
        total_applied++;
        if (was_detected) {
          detected[m]++;
          total_detected++;
        }
      }
    }
  }

  ASSERT_GT(total_applied, 100) << "fuzzer applied too few mutations";
  for (Mutation m : kClasses) {
    EXPECT_GT(applied[m], 0) << MutationName(m) << " never applied";
    EXPECT_GT(detected[m], 0) << MutationName(m) << " never detected";
  }
  double rate = static_cast<double>(total_detected) / total_applied;
  EXPECT_GE(rate, 0.95) << "detection rate " << rate << " ("
                        << total_detected << "/" << total_applied << ")";
}

// ===================================================================
// Unperturbed workloads stay P-clean end to end
// ===================================================================

TEST_F(PhysicalVerifierTest, All30WorkloadsExecuteCleanBothPipelineModes) {
  for (const Workload& w : AllWorkloads()) {
    for (bool pipeline : {false, true}) {
      RunOptions o;
      o.pipeline = pipeline;
      o.verify_plans = true;  // a P-finding fails the query
      o.use_plan_cache = false;
      auto r = session_->Run(w.source, o);
      EXPECT_TRUE(r.ok()) << w.name << " pipeline=" << pipeline << ": "
                          << r.status().ToString();
    }
  }
}

// ===================================================================
// Build-time op_masks
// ===================================================================

TEST_F(PhysicalVerifierTest, OpMasksRideThePipelinePlanAndVerifyClean) {
  // `c` is never read above the filter: the build-time mask must mark it
  // dead on the filter's output, and the verifier's independent liveness
  // recompute must agree (no P030).
  Schema s;
  s.Add("a", DataType::kInt64);
  s.Add("b", DataType::kInt64);
  s.Add("c", DataType::kString);
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", Table(s)).ok());
  auto bq = BindSql("SELECT a FROM t WHERE b > 0", cat);
  ASSERT_TRUE(bq.ok()) << bq.status().message();
  FixResolver(&*bq, cat);
  PipelinePlan pp = BuildPipelines(*bq->plans.back());
  ASSERT_FALSE(pp.pipelines.empty());
  bool masked = false;
  for (const auto& d : pp.pipelines) {
    ASSERT_EQ(d.op_masks.size(), d.ops.size());
    for (size_t i = 0; i < d.ops.size(); ++i) {
      if (d.op_masks[i].empty()) continue;
      ASSERT_EQ(d.op_masks[i].size(), d.ops[i]->schema.num_columns());
      for (uint8_t live : d.op_masks[i]) masked = masked || live == 0;
    }
  }
  EXPECT_TRUE(masked) << "dead column 'c' not masked anywhere";
  EXPECT_FALSE(
      HasErrorDiags(physical::VerifyPipelines(*bq->plans.back(), pp)));
}

// ===================================================================
// Param tier: P040-P043
// ===================================================================

tondir::Program OneParamProgram() {
  // q(x) := t(x, y), y >= $p0.
  tondir::Program prog;
  tondir::Rule r;
  r.head.relation = "q";
  r.head.vars = {"x"};
  r.head.col_names = {"x"};
  r.body.push_back(tondir::Atom::RelAccess("t", {"x", "y"}));
  r.body.push_back(tondir::Atom::Compare(
      "y", tondir::CmpOp::kGe, tondir::Term::Param(0, Value::Int64(5))));
  prog.rules.push_back(std::move(r));
  prog.base_columns["t"] = {"a", "b"};
  return prog;
}

TEST(ParamSlotVerifier, CleanProgramPasses) {
  auto diags =
      physical::VerifyParamSlots(OneParamProgram(), {DataType::kInt64});
  EXPECT_TRUE(diags.empty());
}

TEST(ParamSlotVerifier, OutOfRangeIndexIsP040) {
  auto diags = physical::VerifyParamSlots(OneParamProgram(), {});
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].code, analysis::codes::kParamIndexOutOfRange);
}

TEST(ParamSlotVerifier, SeedTypeDriftIsP042) {
  auto diags =
      physical::VerifyParamSlots(OneParamProgram(), {DataType::kString});
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].code, analysis::codes::kParamSeedTypeMismatch);
}

TEST(ParamSlotVerifier, FoldedSlotIsP041) {
  // Slot 1 is declared but no kParam term references it: a
  // value-dependent pass folded it, so EXECUTE bindings would be
  // silently ignored.
  auto diags = physical::VerifyParamSlots(
      OneParamProgram(), {DataType::kInt64, DataType::kFloat64});
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].code, analysis::codes::kParamFolded);
}

TEST(ParamSlotVerifier, SkeletonSqlRoundTrip) {
  const std::string sql = "SELECT a FROM t WHERE b > $p0 AND c < $p1";
  EXPECT_TRUE(physical::VerifySkeletonSql(sql, 2).empty());
  // Declared slot never surfaces -> P043.
  auto missing = physical::VerifySkeletonSql(sql, 3);
  ASSERT_FALSE(missing.empty());
  EXPECT_EQ(missing[0].code, analysis::codes::kSkeletonSlotMismatch);
  // SQL references an undeclared slot -> P043.
  auto extra = physical::VerifySkeletonSql(sql, 1);
  ASSERT_FALSE(extra.empty());
  EXPECT_EQ(extra[0].code, analysis::codes::kSkeletonSlotMismatch);
}

// ===================================================================
// Engine wiring: stats, metrics, EXPLAIN ANALYZE line, stage blame
// ===================================================================

TEST_F(PhysicalVerifierTest, VerifyMetricsAndExplainLine) {
  engine::Database& db = session_->db();
  const uint64_t before =
      db.metrics().counter("tond_verify_ns_total").Value();
  engine::QueryOptions opts;
  opts.verify_plans = true;
  opts.explain = engine::ExplainMode::kAnalyze;
  auto out = db.ExplainQuery(
      "SELECT l_orderkey FROM lineitem WHERE l_orderkey > 0 LIMIT 5",
      opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->find("-- verify=ok"), std::string::npos) << *out;
  EXPECT_GT(db.metrics().counter("tond_verify_ns_total").Value(), before);
}

TEST_F(PhysicalVerifierTest, PreparedStatementsVerifyOncePerHandle) {
  engine::Database& db = session_->db();
  obs::Counter& stages = db.metrics().counter("tond_verify_stages_total");
  RunOptions o;
  o.verify_plans = true;
  auto ps = session_->Prepare(R"(
@pytond()
def q(lineitem):
    v = lineitem[lineitem.l_quantity > 10.0]
    return v[["l_orderkey"]]
)",
                              o);
  ASSERT_TRUE(ps.ok()) << ps.status().ToString();
  ASSERT_TRUE(ps->Execute().ok());
  const uint64_t after_first = stages.Value();
  ASSERT_TRUE(ps->Execute().ok());
  ASSERT_TRUE(ps->Execute().ok());
  // Re-executions skip verification: no new stages recorded.
  EXPECT_EQ(stages.Value(), after_first);
}

TEST(PhysicalVerifierUnit, StageBlameNamesTheFailingStage) {
  // A corrupted plan fed through CheckOrError carries the stage label
  // the engine would attach (per-pass blame).
  Schema s;
  s.Add("a", DataType::kInt64);
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", Table(s)).ok());
  auto bq = BindSql("SELECT a FROM t", cat);
  ASSERT_TRUE(bq.ok());
  FixResolver(&*bq, cat);
  bq->plans.back()->schema.types[0] = DataType::kString;
  auto diags = physical::VerifyPlan(*bq->plans.back(), bq->vopts);
  ASSERT_TRUE(HasErrorDiags(diags));
  Status st = physical::CheckOrError(diags, "optimizer:limit_pushdown");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("optimizer:limit_pushdown"),
            std::string::npos);
  EXPECT_NE(st.message().find("P0"), std::string::npos) << st.message();
}

}  // namespace
}  // namespace pytond
