#include <gtest/gtest.h>

#include "engine/database.h"
#include "optimizer/passes.h"
#include "sqlgen/sqlgen.h"
#include "tondir/ir.h"

namespace pytond::sqlgen {
namespace {

using tondir::ParseProgram;
using tondir::Program;

Program Parse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? *p : Program();
}

std::string Gen(Program p, SqlDialect dialect = SqlDialect::kDuck) {
  SqlGenOptions opts;
  opts.dialect = dialect;
  opts.pretty = false;
  auto r = GenerateSql(p, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : "";
}

TEST(SqlGenTest, PaperSectionIIIEExample) {
  // R1(a, s) :- R(a, b, c), (s=sum(b)).  -- sink, so no WITH needed
  Program p = Parse("R1(a, s) group(a) :- R(a, b, c), (s = sum(b)).");
  p.base_columns["R"] = {"a", "b", "c"};
  std::string sql = Gen(p);
  EXPECT_EQ(sql,
            "SELECT r1.a AS a, SUM(r1.b) AS s FROM R AS r1 GROUP BY r1.a");
}

TEST(SqlGenTest, ChainBecomesCtes) {
  Program p = Parse(
      "V(a) :- T(a, b), (a > 5).\n"
      "Out(a) :- V(a).");
  p.base_columns["T"] = {"a", "b"};
  std::string sql = Gen(p);
  EXPECT_EQ(sql,
            "WITH V(a) AS ( SELECT r1.a AS a FROM T AS r1 WHERE (r1.a > 5) ) "
            "SELECT r2.a AS a FROM V AS r2");
}

TEST(SqlGenTest, JoinViaSharedVariables) {
  Program p = Parse("Out(a, c) :- T(id, a), U(id, c).");
  p.base_columns["T"] = {"tid", "ta"};
  p.base_columns["U"] = {"uid_", "uc"};
  std::string sql = Gen(p);
  EXPECT_EQ(sql,
            "SELECT r1.ta AS a, r2.uc AS c FROM T AS r1, U AS r2 "
            "WHERE (r1.tid = r2.uid_)");
}

TEST(SqlGenTest, RepeatedVarWithinAccessIsEquality) {
  // einsum('ii->i') diagonal pattern.
  Program p = Parse("Out(x) :- M(x, x).");
  p.base_columns["M"] = {"c0", "c1"};
  std::string sql = Gen(p);
  EXPECT_EQ(sql, "SELECT r1.c0 AS x FROM M AS r1 WHERE (r1.c0 = r1.c1)");
}

TEST(SqlGenTest, SortLimitDistinct) {
  Program p = Parse(
      "Out(a, b) sort(b desc, a) limit(10) distinct :- T(a, b).");
  p.base_columns["T"] = {"a", "b"};
  std::string sql = Gen(p);
  EXPECT_EQ(sql,
            "SELECT DISTINCT r1.a AS a, r1.b AS b FROM T AS r1 "
            "ORDER BY b DESC, a LIMIT 10");
}

TEST(SqlGenTest, SortWithoutLimitOnlyInSink) {
  Program p = Parse(
      "V(a) sort(a) :- T(a, b).\n"
      "Out(a) :- V(a).");
  p.base_columns["T"] = {"a", "b"};
  SqlGenOptions opts;
  auto r = GenerateSql(p, opts);
  EXPECT_FALSE(r.ok());
}

TEST(SqlGenTest, TopNInCteIsAllowed) {
  Program p = Parse(
      "V(a) sort(a desc) limit(3) :- T(a, b).\n"
      "Out(a) :- V(a).");
  p.base_columns["T"] = {"a", "b"};
  std::string sql = Gen(p);
  EXPECT_NE(sql.find("ORDER BY a DESC LIMIT 3"), std::string::npos);
}

TEST(SqlGenTest, ConstantRelationBecomesValues) {
  Program p = Parse(
      "V(c0) :- (c0 = [0, 1]).\n"
      "Out(c0) :- V(c0).");
  std::string sql = Gen(p);
  EXPECT_EQ(sql,
            "WITH V(c0) AS ( VALUES (0), (1) ) SELECT r1.c0 AS c0 "
            "FROM V AS r1");
}

TEST(SqlGenTest, IfBecomesCase) {
  Program p = Parse("Out(x) :- T(a, b), (x = if(a > 1, b, 0)).");
  p.base_columns["T"] = {"a", "b"};
  std::string sql = Gen(p);
  EXPECT_NE(sql.find("CASE WHEN (r1.a > 1) THEN r1.b ELSE 0 END"),
            std::string::npos);
}

TEST(SqlGenTest, UidBecomesRowNumberWindow) {
  Program p = Parse("Out(id, a) :- T(a, b), (id = uid()).");
  p.base_columns["T"] = {"a", "b"};
  std::string sql = Gen(p);
  EXPECT_NE(sql.find("row_number() OVER (ORDER BY r1.a)"),
            std::string::npos);
}

TEST(SqlGenTest, ExistsBecomesCorrelatedSubquery) {
  Program p = Parse("Out(a) :- T(a, b), exists(U(a, c)).");
  p.base_columns["T"] = {"a", "b"};
  p.base_columns["U"] = {"ua", "uc"};
  std::string sql = Gen(p);
  EXPECT_NE(sql.find("EXISTS (SELECT 1 FROM U AS r2 WHERE (r2.ua = r1.a))"),
            std::string::npos)
      << sql;
}

TEST(SqlGenTest, NegatedExists) {
  Program p = Parse("Out(a) :- T(a, b), !exists(U(a, c)).");
  p.base_columns["T"] = {"a", "b"};
  p.base_columns["U"] = {"ua", "uc"};
  EXPECT_NE(Gen(p).find("NOT EXISTS"), std::string::npos);
}

TEST(SqlGenTest, OuterJoinMarkers) {
  Program p = Parse(
      "Out(a, x, b, y) :- T(a, x), U(b, y), @outer_left(a, b).");
  p.base_columns["T"] = {"ta", "tx"};
  p.base_columns["U"] = {"ub", "uy"};
  std::string sql = Gen(p);
  EXPECT_NE(sql.find("T AS r1 LEFT JOIN U AS r2 ON r1.ta = r2.ub"),
            std::string::npos)
      << sql;
}

TEST(SqlGenTest, FullOuterCoalescesKeys) {
  Program p = Parse(
      "Out(a, b) :- T(a, x), U(b, y), @outer_full(a, b).");
  p.base_columns["T"] = {"ta", "tx"};
  p.base_columns["U"] = {"ub", "uy"};
  std::string sql = Gen(p);
  EXPECT_NE(sql.find("FULL JOIN"), std::string::npos);
  EXPECT_NE(sql.find("COALESCE(r1.ta, r2.ub)"), std::string::npos) << sql;
}

TEST(SqlGenTest, DialectAdaptationForDateFunctions) {
  Program p = Parse("Out(y) :- T(d), (y = year(d)).");
  p.base_columns["T"] = {"d"};
  EXPECT_NE(Gen(p, SqlDialect::kDuck).find("EXTRACT(YEAR FROM r1.d)"),
            std::string::npos);
  EXPECT_NE(Gen(p, SqlDialect::kHyper).find("year(r1.d)"),
            std::string::npos);
}

TEST(SqlGenTest, TypeAwareDateLiteralPerDialect) {
  // With dataflow facts attached, a string constant compared against a
  // date-typed column is emitted as a typed literal in the dialect's
  // preferred spelling (paper §III-E, Backend Adaptation).
  Program p = Parse(
      "@base T(d:date, v:int).\n"
      "Out(v) :- T(d, v), (d < \"1995-01-01\").");
  analysis::dataflow::AnalyzeOptions aopts;
  aopts.base_relations = {"T"};
  auto facts = analysis::dataflow::AnalyzeProgram(p, aopts);
  SqlGenOptions opts;
  opts.pretty = false;
  opts.facts = &facts;
  opts.dialect = SqlDialect::kDuck;
  auto duck = GenerateSql(p, opts);
  ASSERT_TRUE(duck.ok()) << duck.status().ToString();
  EXPECT_NE(duck->find("DATE '1995-01-01'"), std::string::npos) << *duck;
  opts.dialect = SqlDialect::kHyper;
  auto hyper = GenerateSql(p, opts);
  ASSERT_TRUE(hyper.ok()) << hyper.status().ToString();
  EXPECT_NE(hyper->find("CAST('1995-01-01' AS date)"), std::string::npos)
      << *hyper;
  // Without facts (or for non-date columns) the constant stays a plain
  // string literal.
  opts.facts = nullptr;
  auto plain = GenerateSql(p, opts);
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(plain->find("'1995-01-01'"), std::string::npos);
  EXPECT_EQ(plain->find("CAST"), std::string::npos) << *plain;
  EXPECT_EQ(plain->find("DATE '"), std::string::npos) << *plain;
}

TEST(SqlGenTest, AggregateSpellings) {
  Program p = Parse(
      "Out(g, s, c, cd, m) group(g) :- T(g, v), (s = sum(v)), "
      "(c = count(1)), (cd = count_distinct(v)), (m = avg(v)).");
  p.base_columns["T"] = {"g", "v"};
  std::string sql = Gen(p);
  EXPECT_NE(sql.find("COUNT(*)"), std::string::npos);
  EXPECT_NE(sql.find("COUNT(DISTINCT r1.v)"), std::string::npos);
  EXPECT_NE(sql.find("AVG(r1.v)"), std::string::npos);
}

TEST(SqlGenTest, StringsEscaped) {
  Program p = Parse("Out(a) :- T(a, s), (s = \"o'brien\").");
  p.base_columns["T"] = {"a", "s"};
  EXPECT_NE(Gen(p).find("'o''brien'"), std::string::npos);
}

// ------------------------- end-to-end: TondIR -> SQL -> engine ----------

class SqlGenEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t;
    ASSERT_TRUE(t.AddColumn("id", Column::Int64({1, 2, 3, 4})).ok());
    ASSERT_TRUE(t.AddColumn("g", Column::String({"a", "a", "b", "b"})).ok());
    ASSERT_TRUE(t.AddColumn("v", Column::Float64({1, 2, 3, 4})).ok());
    ASSERT_TRUE(db_.CreateTable("t", std::move(t)).ok());
    Table u;
    ASSERT_TRUE(u.AddColumn("id", Column::Int64({2, 3, 9})).ok());
    ASSERT_TRUE(u.AddColumn("w", Column::Float64({20, 30, 90})).ok());
    ASSERT_TRUE(db_.CreateTable("u", std::move(u)).ok());
  }

  Table RunProgram(const std::string& ir) {
    Program p = Parse(ir);
    p.base_columns["t"] = {"id", "g", "v"};
    p.base_columns["u"] = {"id", "w"};
    auto sql = GenerateSql(p, {});
    EXPECT_TRUE(sql.ok()) << sql.status().ToString();
    auto res = db_.Query(*sql);
    EXPECT_TRUE(res.ok()) << *sql << "\n"
                          << (res.ok() ? "" : res.status().ToString());
    return res.ok() ? **res : Table();
  }

  engine::Database db_;
};

TEST_F(SqlGenEndToEndTest, FilterProject) {
  Table r = RunProgram("Out(id, v) :- t(id, g, v), (v > 2).");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(SqlGenEndToEndTest, GroupAggregate) {
  Table r = RunProgram(
      "Out(g, s) group(g) sort(g) :- t(id, g, v), (s = sum(v)).");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.column(1).Get(0), Value::Float64(3.0));
  EXPECT_EQ(r.column(1).Get(1), Value::Float64(7.0));
}

TEST_F(SqlGenEndToEndTest, JoinThroughSharedVar) {
  Table r = RunProgram("Out(id, v, w) :- t(id, g, v), u(id, w).");
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST_F(SqlGenEndToEndTest, ExistsSemiJoin) {
  Table r = RunProgram("Out(id) :- t(id, g, v), exists(u(id, w)).");
  EXPECT_EQ(r.num_rows(), 2u);
  Table r2 = RunProgram("Out(id) :- t(id, g, v), !exists(u(id, w)).");
  EXPECT_EQ(r2.num_rows(), 2u);
}

TEST_F(SqlGenEndToEndTest, UidColumn) {
  Table r = RunProgram(
      "Out(rid, id) :- t(id, g, v), (rid = uid()).");
  ASSERT_EQ(r.num_rows(), 4u);
  // Table ids are 1..4; uid follows that order but starts at 0
  // (paper §II-B: "an ID column starting from 0").
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r.column(0).Get(i).AsInt64() + 1,
              r.column(1).Get(i).AsInt64());
  }
}

TEST_F(SqlGenEndToEndTest, OptimizedAndUnoptimizedAgree) {
  const char* ir =
      "V1(id, v, w) :- t(id, g, v), u(id, w).\n"
      "V2(id, p) :- V1(id, v, w), (p = (v * w)).\n"
      "Out(s) :- V2(id, p), (s = sum(p)).";
  Program p0 = Parse(ir);
  p0.base_columns["t"] = {"id", "g", "v"};
  p0.base_columns["u"] = {"id", "w"};
  Program p4 = Parse(ir);
  p4.base_columns = p0.base_columns;
  ASSERT_TRUE(
      opt::Optimize(&p4, {"t", "u"}, opt::OptimizerOptions::Preset(4)).ok());
  EXPECT_LT(p4.rules.size(), p0.rules.size());
  auto sql0 = GenerateSql(p0, {});
  auto sql4 = GenerateSql(p4, {});
  ASSERT_TRUE(sql0.ok() && sql4.ok());
  auto r0 = db_.Query(*sql0);
  auto r4 = db_.Query(*sql4);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  ASSERT_TRUE(r4.ok()) << *sql4 << "\n" << r4.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**r0, **r4, 1e-9, &diff)) << diff;
}

}  // namespace
}  // namespace pytond::sqlgen
