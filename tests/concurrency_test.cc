// Concurrency stress: many session threads racing mixed queries on one
// Database over the shared worker pool and plan cache. Asserts per-query
// results stay correct, plan-cache accounting adds up, the pool is shared
// (not per query), and per-query trace collectors never cross-contaminate.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  static Session* session_;

  static void SetUpTestSuite() {
    session_ = new Session();
    ASSERT_TRUE(workloads::tpch::Populate(&session_->db(), 0.01).ok());
    ASSERT_TRUE(
        workloads::datasci::PopulateCrimeIndex(&session_->db(), 6000).ok());
    ASSERT_TRUE(
        workloads::datasci::PopulateHybrid(&session_->db(), 6000).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
};

Session* ConcurrencyTest::session_ = nullptr;

/// 8 session threads × 6 queries each, every query itself parallel
/// (threads=2) on the shared pool, mixed plan-cache hits and misses —
/// with pipelined and materializing execution racing side by side (odd
/// threads stream, even threads materialize). Assertions are on final
/// results only, never on execution shape: each run must equal the
/// reference computed serially under the *same* strategy, exactly.
TEST_F(ConcurrencyTest, RacingQueriesMatchReferences) {
  const std::vector<std::string> sources = {
      workloads::tpch::GetQuery(1).source,
      workloads::tpch::GetQuery(6).source,
      workloads::tpch::GetQuery(14).source,
      workloads::tpch::GetQuery(19).source,
      workloads::datasci::CrimeIndexSource(),
      workloads::datasci::HybridMatMulSource(false),
  };

  // refs[pipeline][i]: per-strategy references (same thread count, same
  // morsel chunking, same merge order => exact agreement within a mode).
  std::shared_ptr<const Table> refs[2][6];
  for (int pipeline = 0; pipeline < 2; ++pipeline) {
    for (size_t i = 0; i < sources.size(); ++i) {
      RunOptions o;
      o.num_threads = 2;
      o.pipeline = pipeline == 1;
      auto r = session_->Run(sources[i], o);
      ASSERT_TRUE(r.ok()) << "reference " << i << " pipeline=" << pipeline
                          << ": " << r.status().ToString();
      refs[pipeline][i] = *r;
    }
  }

  constexpr int kThreads = 8;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const bool pipeline = (t % 2) == 1;
      RunOptions opts;
      opts.num_threads = 2;
      opts.pipeline = pipeline;
      for (size_t q = 0; q < sources.size(); ++q) {
        // Rotate the starting query per thread so different queries race.
        const size_t i = (q + static_cast<size_t>(t)) % sources.size();
        auto r = session_->Run(sources[i], opts);
        if (!r.ok()) {
          errors[t] = "query " + std::to_string(i) + ": " +
                      r.status().ToString();
          return;
        }
        std::string diff;
        if (!Table::UnorderedEquals(**r, *refs[pipeline ? 1 : 0][i], 0.0,
                                    &diff)) {
          errors[t] = "query " + std::to_string(i) + " diverged: " + diff;
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }
}

/// Concurrent same-source runs: hits + misses must equal total runs, the
/// cache must converge to one entry per distinct (source, options), and
/// duplicate compiles (two threads missing at once) are bounded by the
/// thread count.
TEST_F(ConcurrencyTest, PlanCacheAccountingUnderRaces) {
  Session session;  // fresh cache so the arithmetic below is exact
  ASSERT_TRUE(workloads::datasci::PopulateCrimeIndex(&session.db(), 6000)
                  .ok());
  const std::string shared_source = workloads::datasci::CrimeIndexSource();

  constexpr int kThreads = 16;
  constexpr int kRunsPerThread = 4;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        RunOptions o;
        o.num_threads = 1 + (t % 2);
        auto res = session.Run(shared_source, o);
        if (!res.ok()) {
          errors[t] = res.status().ToString();
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }

  PlanCacheStats stats = session.plan_cache_stats();
  const uint64_t total = kThreads * kRunsPerThread;
  EXPECT_EQ(stats.hits + stats.misses, total);
  // num_threads is execution-only: one cache entry serves both degrees.
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.misses, 1u);
  EXPECT_LE(stats.misses, static_cast<uint64_t>(kThreads));
  EXPECT_GE(stats.hits, total - kThreads);
}

/// Regression: plan-cache hits used to drop verifier warnings (the
/// compile was skipped and nothing re-surfaced the stored diagnostics).
/// Now the diagnostics live on the cached Compiled and every hit re-emits
/// a `warnings` counter on its plan_cache span.
TEST_F(ConcurrencyTest, PlanCacheHitsKeepVerifierWarnings) {
  Session session;  // fresh cache so hit/miss order is deterministic
  ASSERT_TRUE(workloads::tpch::Populate(&session.db(), 0.01).ok());
  // Contradictory filters: the deep-lint tier proves the result empty
  // (T021 always-false predicate + T032 empty sink).
  const std::string source = R"(
@pytond()
def q(lineitem):
    v = lineitem[lineitem.l_quantity > 100]
    w = v[v.l_quantity < 50]
    return w
)";
  RunOptions opts;
  opts.deep_lints = true;

  obs::TraceCollector miss_trace;
  RunOptions miss_opts = opts;
  miss_opts.trace = &miss_trace;
  auto first = session.CompileCached(source, miss_opts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE((*first)->diagnostics.empty());

  obs::TraceCollector hit_trace;
  RunOptions hit_opts = opts;
  hit_opts.trace = &hit_trace;
  auto second = session.CompileCached(source, hit_opts);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // The hit returns the same artifact, warnings still attached.
  EXPECT_EQ(first->get(), second->get());
  ASSERT_FALSE((*second)->diagnostics.empty());
  bool saw_always_false = false;
  for (const auto& d : (*second)->diagnostics) {
    if (d.code == analysis::codes::kAlwaysFalsePredicate) {
      saw_always_false = true;
      EXPECT_FALSE(d.notes.empty()) << "inference chain missing";
    }
  }
  EXPECT_TRUE(saw_always_false);

  // And the hit's trace re-emits the warning count.
  const obs::SpanNode* span = hit_trace.root().FindDescendant("plan_cache");
  ASSERT_NE(span, nullptr);
  int64_t hit = -1, warnings = -1;
  for (const auto& [k, v] : span->counters) {
    if (k == "hit") hit = v;
    if (k == "warnings") warnings = v;
  }
  EXPECT_EQ(hit, 1);
  EXPECT_EQ(warnings,
            static_cast<int64_t>((*second)->diagnostics.size()));

  // deep_lints participates in the cache key: a non-deep compile of the
  // same source is a distinct entry without stored warnings.
  RunOptions shallow;
  auto third = session.CompileCached(source, shallow);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first->get(), third->get());
  EXPECT_TRUE((*third)->diagnostics.empty());
  EXPECT_EQ(session.plan_cache_stats().entries, 2u);
}

/// One pool per Database: concurrent parallel queries share it, it is
/// sized by the largest degree requested, and it keeps its workers across
/// queries (no per-call spawning).
TEST_F(ConcurrencyTest, PoolIsSharedAcrossConcurrentQueries) {
  RunOptions opts;
  opts.num_threads = 4;
  auto warm = session_->Run(workloads::tpch::GetQuery(6).source, opts);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  const auto* pool = session_->db().pool_if_created();
  ASSERT_NE(pool, nullptr);
  EXPECT_GE(pool->num_workers(), 3);
  uint64_t runs_before = pool->total_runs();
  uint64_t morsels_before = pool->total_morsels();
  int workers_before = pool->num_workers();

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      auto r = session_->Run(workloads::tpch::GetQuery(6).source, opts);
      if (!r.ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool->num_workers(), workers_before)
      << "concurrent queries must reuse the pool, not grow it";
  EXPECT_GT(pool->total_runs(), runs_before);
  EXPECT_GT(pool->total_morsels(), morsels_before);
}

/// Per-query TraceCollectors on racing queries: each trace must contain
/// exactly its own query's spans — the scan labels of its tables, one
/// "query" span — and nothing from the query racing next to it. The
/// assertions are deliberately pipeline-shape-agnostic: scan spans and
/// the query root exist under both execution strategies (pipelined runs
/// synthesize per-operator spans, materializing runs record them live),
/// while intermediate span layout and buffer counts differ — so both
/// strategies race here, alternating per iteration.
TEST_F(ConcurrencyTest, TracesDoNotCrossContaminate) {
  struct Case {
    std::string source;
    const char* must_scan;     // table this query scans
    const char* must_not_scan; // table only the *other* query scans
  };
  const std::vector<Case> cases = {
      {workloads::tpch::GetQuery(6).source, "Scan:lineitem",
       "Scan:crime_data"},
      {workloads::datasci::CrimeIndexSource(), "Scan:crime_data",
       "Scan:lineitem"},
  };

  constexpr int kIterations = 4;
  constexpr int kThreadsPerCase = 3;
  struct Outcome {
    std::string error;
  };
  std::vector<Outcome> outcomes(cases.size() * kThreadsPerCase);
  std::vector<std::thread> workers;
  for (size_t c = 0; c < cases.size(); ++c) {
    for (int t = 0; t < kThreadsPerCase; ++t) {
      workers.emplace_back([&, c, t] {
        Outcome& out = outcomes[c * kThreadsPerCase + t];
        for (int i = 0; i < kIterations; ++i) {
          obs::TraceCollector trace;
          RunOptions o;
          o.num_threads = 2;
          o.pipeline = (i % 2) == 0;
          o.trace = &trace;
          auto r = session_->Run(cases[c].source, o);
          if (!r.ok()) {
            out.error = r.status().ToString();
            return;
          }
          const obs::SpanNode& root = trace.root();
          size_t query_spans = 0;
          for (const auto& child : root.children) {
            if (child->name == "query") ++query_spans;
          }
          if (query_spans != 1) {
            out.error = "expected exactly 1 query span, saw " +
                        std::to_string(query_spans);
            return;
          }
          if (root.FindDescendant(cases[c].must_scan) == nullptr) {
            out.error = std::string("missing own span ") +
                        cases[c].must_scan;
            return;
          }
          if (root.FindDescendant(cases[c].must_not_scan) != nullptr) {
            out.error = std::string("foreign span leaked in: ") +
                        cases[c].must_not_scan;
            return;
          }
        }
      });
    }
  }
  for (std::thread& w : workers) w.join();
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].error.empty())
        << "worker " << i << ": " << outcomes[i].error;
  }
}

/// EXPLAIN ANALYZE op_stats are per query too: racing analyzes must each
/// see their own operator actuals (every executed operator annotated,
/// plausible row counts).
TEST_F(ConcurrencyTest, ExplainAnalyzeIsolatedUnderRaces) {
  RunOptions copts;
  auto q6 = session_->Compile(workloads::tpch::GetQuery(6).source, copts);
  ASSERT_TRUE(q6.ok());
  auto q1 = session_->Compile(workloads::tpch::GetQuery(1).source, copts);
  ASSERT_TRUE(q1.ok());
  const std::vector<std::string> sqls = {q6->sql, q1->sql};

  std::vector<std::string> errors(4);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      engine::QueryOptions qopts;
      qopts.num_threads = 2;
      qopts.pipeline = (t % 2) == 0;  // both shapes race
      qopts.explain = engine::ExplainMode::kAnalyze;
      auto text = session_->db().ExplainQuery(sqls[t % sqls.size()], qopts);
      if (!text.ok()) {
        errors[t] = text.status().ToString();
        return;
      }
      if (text->find("rows=") == std::string::npos ||
          text->find("time=") == std::string::npos) {
        errors[t] = "missing actuals in:\n" + *text;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (size_t t = 0; t < errors.size(); ++t) {
    EXPECT_TRUE(errors[t].empty()) << "analyze " << t << ": " << errors[t];
  }
}

}  // namespace
}  // namespace pytond
