#include <gtest/gtest.h>

#include "core/session.h"

namespace pytond {
namespace {

/// Failure injection: every malformed input must surface a clean Status
/// from the right pipeline stage — never a crash, never silent garbage.
struct BadInput {
  const char* label;
  const char* source;
  StatusCode expected;
};

class FailureInjectionTest : public ::testing::TestWithParam<BadInput> {
 protected:
  void SetUp() override {
    Table t;
    ASSERT_TRUE(t.AddColumn("k", Column::Int64({1, 2, 3})).ok());
    ASSERT_TRUE(t.AddColumn("v", Column::Float64({1, 2, 3})).ok());
    ASSERT_TRUE(session_.db().CreateTable("t", std::move(t)).ok());
  }
  Session session_;
};

TEST_P(FailureInjectionTest, CompileFailsCleanly) {
  const BadInput& c = GetParam();
  auto r = session_.Compile(c.source);
  ASSERT_FALSE(r.ok()) << c.label;
  EXPECT_EQ(r.status().code(), c.expected)
      << c.label << ": " << r.status().ToString();
  EXPECT_FALSE(r.status().message().empty()) << c.label;
}

TEST_P(FailureInjectionTest, BaselineAlsoFailsCleanly) {
  // The eager interpreter must reject the same inputs without crashing
  // (its error category may differ, e.g. parse errors surface first).
  const BadInput& c = GetParam();
  auto r = session_.RunBaseline(c.source);
  EXPECT_FALSE(r.ok()) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    BadSources, FailureInjectionTest,
    ::testing::Values(
        BadInput{"NoDecoratedFunction", "def f(t):\n    return t\n",
                 StatusCode::kInvalidArgument},
        BadInput{"SyntaxError",
                 "@pytond()\ndef f(t):\n    v = t[[\n    return v\n",
                 StatusCode::kParseError},
        BadInput{"NoReturn", "@pytond()\ndef f(t):\n    v = t\n",
                 StatusCode::kInvalidArgument},
        BadInput{"UnknownTableParam",
                 "@pytond()\ndef f(nope):\n    return nope\n",
                 StatusCode::kNotFound},
        BadInput{"UnknownColumn",
                 "@pytond()\ndef f(t):\n    v = t[t.zzz > 1]\n    return v\n",
                 StatusCode::kNotFound},
        BadInput{"UnknownVariable",
                 "@pytond()\ndef f(t):\n    return ghost\n",
                 StatusCode::kNotFound},
        BadInput{"UnsupportedMethod",
                 "@pytond()\ndef f(t):\n    v = t.explode('k')\n"
                 "    return v\n",
                 StatusCode::kUnsupported},
        BadInput{"MergeWithoutKeys",
                 "@pytond()\ndef f(t):\n    v = t.merge(t)\n    return v\n",
                 StatusCode::kInvalidArgument},
        BadInput{"BadMergeKey",
                 "@pytond()\ndef f(t):\n"
                 "    v = t.merge(t, on='missing')\n    return v\n",
                 StatusCode::kNotFound},
        BadInput{"PivotWithoutDistinctValues",
                 "@pytond()\ndef f(t):\n"
                 "    v = t.pivot_table(index='k', columns='v', values='v',"
                 " aggfunc='sum')\n    return v\n",
                 StatusCode::kInvalidArgument},
        BadInput{"BadEinsumSpec",
                 "@pytond()\ndef f(t):\n    a = t.to_numpy()\n"
                 "    v = np.einsum('nonsense', a)\n    return v\n",
                 StatusCode::kInvalidArgument},
        BadInput{"EinsumOrderThree",
                 "@pytond()\ndef f(t):\n    a = t.to_numpy()\n"
                 "    v = np.einsum('ijk->i', a)\n    return v\n",
                 StatusCode::kUnsupported},
        BadInput{"EmptyIsinList",
                 "@pytond()\ndef f(t):\n    v = t[t.k.isin([])]\n"
                 "    return v\n",
                 StatusCode::kInvalidArgument},
        BadInput{"AggWithoutNamedSpecs",
                 "@pytond()\ndef f(t):\n    v = t.agg('sum')\n"
                 "    return v\n",
                 StatusCode::kUnsupported}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.label;
    });

/// Engine-level failure injection via hand-written SQL.
class SqlFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table t;
    ASSERT_TRUE(t.AddColumn("k", Column::Int64({1})).ok());
    ASSERT_TRUE(db_.CreateTable("t", std::move(t)).ok());
  }
  engine::Database db_;
};

TEST_F(SqlFailureTest, RejectsGarbageGracefully) {
  const char* bad[] = {
      "",                                    // empty
      "SELECT",                              // truncated
      "SELECT * FROM",                       // missing table
      "SELECT * FROM t WHERE",               // truncated predicate
      "SELECT * FROM t ORDER BY",            // truncated order
      "WITH x AS SELECT 1",                  // missing parens
      "SELECT * FROM t; SELECT * FROM t",    // trailing statement
      "SELECT unknown_fn(k) FROM t",         // unknown function
      "SELECT k FROM t GROUP BY",            // truncated group by
      "SELECT CAST(k AS blob) FROM t",       // unsupported cast
  };
  for (const char* sql : bad) {
    auto r = db_.Query(sql);
    EXPECT_FALSE(r.ok()) << "accepted: " << sql;
  }
}

TEST_F(SqlFailureTest, DeepExpressionNestingParses) {
  // Robustness: deeply parenthesized expressions should not crash the
  // recursive-descent parser at reasonable depth.
  std::string expr = "k";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto r = db_.Query("SELECT " + expr + " AS e FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->column(0).Get(0), Value::Int64(201));
}

}  // namespace
}  // namespace pytond
