#include <gtest/gtest.h>

#include "common/date_util.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace pytond {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: table 'x'");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubler(Result<int> in) {
  PYTOND_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Int64(7).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value::Float64(1.5).AsFloat64(), 1.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Float64(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Float64(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int64(3), Value::Float64(3.0));
  EXPECT_NE(Value::Int64(3), Value::Float64(3.5));
  EXPECT_NE(Value::String("3"), Value::Int64(3));
}

TEST(DataTypeTest, CommonNumericType) {
  EXPECT_EQ(CommonNumericType(DataType::kInt64, DataType::kFloat64),
            DataType::kFloat64);
  EXPECT_EQ(CommonNumericType(DataType::kInt64, DataType::kInt64),
            DataType::kInt64);
  EXPECT_EQ(CommonNumericType(DataType::kBool, DataType::kInt64),
            DataType::kInt64);
  EXPECT_EQ(CommonNumericType(DataType::kString, DataType::kInt64),
            DataType::kNull);
}

TEST(DateUtilTest, RoundTrip) {
  auto d = date_util::FromYMD(1994, 1, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(date_util::Format(*d), "1994-01-01");
  int y, m, dd;
  date_util::ToYMD(*d, &y, &m, &dd);
  EXPECT_EQ(y, 1994);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(dd, 1);
}

TEST(DateUtilTest, EpochIsZero) {
  EXPECT_EQ(*date_util::FromYMD(1970, 1, 1), 0);
  EXPECT_EQ(*date_util::FromYMD(1970, 1, 2), 1);
}

TEST(DateUtilTest, RejectsInvalid) {
  EXPECT_FALSE(date_util::FromYMD(1994, 13, 1).ok());
  EXPECT_FALSE(date_util::FromYMD(1994, 2, 30).ok());
  EXPECT_TRUE(date_util::FromYMD(1996, 2, 29).ok());  // leap year
  EXPECT_FALSE(date_util::FromYMD(1900, 2, 29).ok());  // century non-leap
}

TEST(DateUtilTest, Parse) {
  auto d = date_util::Parse("1998-09-02");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(date_util::Year(*d), 1998);
  EXPECT_EQ(date_util::Month(*d), 9);
  EXPECT_FALSE(date_util::Parse("not-a-date").ok());
}

TEST(DateUtilTest, IntervalArithmetic) {
  int32_t d = *date_util::FromYMD(1994, 1, 31);
  EXPECT_EQ(date_util::Format(date_util::AddMonths(d, 1)), "1994-02-28");
  EXPECT_EQ(date_util::Format(date_util::AddMonths(d, -2)), "1993-11-30");
  EXPECT_EQ(date_util::Format(date_util::AddYears(d, 1)), "1995-01-31");
  EXPECT_EQ(date_util::Format(date_util::AddDays(d, 1)), "1994-02-01");
}

TEST(StringUtilTest, LikeWildcards) {
  using string_util::Like;
  EXPECT_TRUE(Like("PROMO BRUSHED STEEL", "PROMO%"));
  EXPECT_FALSE(Like("STANDARD STEEL", "PROMO%"));
  EXPECT_TRUE(Like("LARGE BRASS", "%BRASS"));
  EXPECT_TRUE(Like("forest green metallic", "%green%"));
  EXPECT_TRUE(Like("abc", "a_c"));
  EXPECT_FALSE(Like("abbc", "a_c"));
  EXPECT_TRUE(Like("special packages requests", "special%requests%"));
  EXPECT_TRUE(Like("", "%"));
  EXPECT_FALSE(Like("", "_"));
  EXPECT_TRUE(Like("x", "%%x%%"));
}

TEST(StringUtilTest, SplitJoinStrip) {
  auto parts = string_util::Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(string_util::Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(string_util::Strip("  hi \n"), "hi");
  EXPECT_TRUE(string_util::StartsWith("foobar", "foo"));
  EXPECT_TRUE(string_util::EndsWith("foobar", "bar"));
  EXPECT_TRUE(string_util::Contains("foobar", "oba"));
}

}  // namespace
}  // namespace pytond
