#include <gtest/gtest.h>

#include "core/session.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond {
namespace {

// ------------------------------------------------------------- TPC-H

class TpchTest : public ::testing::Test {
 protected:
  static Session* session_;

  static void SetUpTestSuite() {
    session_ = new Session();
    ASSERT_TRUE(workloads::tpch::Populate(&session_->db(), 0.01).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }
};

Session* TpchTest::session_ = nullptr;

/// PyTond (optimized, vectorized profile) must agree with the eager
/// baseline on every TPC-H query.
class TpchQueryTest : public TpchTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryTest, PyTondMatchesEagerBaseline) {
  const auto& q = workloads::tpch::GetQuery(GetParam());
  auto baseline = session_->RunBaseline(q.source);
  ASSERT_TRUE(baseline.ok()) << q.name << ": " << baseline.status().ToString();
  auto compiled = session_->Compile(q.source);
  ASSERT_TRUE(compiled.ok()) << q.name << ": "
                             << compiled.status().ToString();
  auto result = session_->Execute(*compiled);
  ASSERT_TRUE(result.ok()) << q.name << "\n"
                           << compiled->sql << "\n"
                           << result.status().ToString();
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**result, *baseline, 1e-6, &diff))
      << q.name << ": " << diff << "\nSQL:\n"
      << compiled->sql;
}

TEST_P(TpchQueryTest, OptimizationLevelsAgree) {
  const auto& q = workloads::tpch::GetQuery(GetParam());
  RunOptions o0;
  o0.optimization_level = 0;  // Grizzly-simulated
  auto r0 = session_->Run(q.source, o0);
  ASSERT_TRUE(r0.ok()) << q.name << ": " << r0.status().ToString();
  auto r4 = session_->Run(q.source);
  ASSERT_TRUE(r4.ok()) << q.name;
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**r0, **r4, 1e-6, &diff))
      << q.name << ": " << diff;
}

TEST_P(TpchQueryTest, CompiledProfileAgrees) {
  const auto& q = workloads::tpch::GetQuery(GetParam());
  RunOptions hyper;
  hyper.profile = engine::BackendProfile::kCompiled;
  hyper.num_threads = 2;
  auto rh = session_->Run(q.source, hyper);
  ASSERT_TRUE(rh.ok()) << q.name << ": " << rh.status().ToString();
  auto rv = session_->Run(q.source);
  ASSERT_TRUE(rv.ok()) << q.name;
  std::string diff;
  EXPECT_TRUE(Table::UnorderedEquals(**rh, **rv, 1e-6, &diff))
      << q.name << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::Range(1, 23),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST_F(TpchTest, AllQueriesReturnRows) {
  // Every query should produce at least one row at SF 0.01 (sanity check
  // that the generated data exercises each query's predicates).
  for (const auto& q : workloads::tpch::AllQueries()) {
    auto r = session_->Run(q.source);
    ASSERT_TRUE(r.ok()) << q.name;
    EXPECT_GT((*r)->num_rows(), 0u) << q.name << " returned no rows";
  }
}

// -------------------------------------------------------- data science

class DatasciTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        workloads::datasci::PopulateCrimeIndex(&session_.db(), 2000).ok());
    ASSERT_TRUE(
        workloads::datasci::PopulateBirthAnalysis(&session_.db(), 3000).ok());
    ASSERT_TRUE(workloads::datasci::PopulateN3(&session_.db(), 3000).ok());
    ASSERT_TRUE(workloads::datasci::PopulateN9(&session_.db(), 3000).ok());
    ASSERT_TRUE(workloads::datasci::PopulateHybrid(&session_.db(), 2000).ok());
  }

  void CheckAgainstBaseline(const char* source, const char* name) {
    auto baseline = session_.RunBaseline(source);
    ASSERT_TRUE(baseline.ok()) << name << ": "
                               << baseline.status().ToString();
    auto compiled = session_.Compile(source);
    ASSERT_TRUE(compiled.ok()) << name << ": "
                               << compiled.status().ToString();
    auto result = session_.Execute(*compiled);
    ASSERT_TRUE(result.ok()) << name << "\n"
                             << compiled->sql << "\n"
                             << result.status().ToString();
    std::string diff;
    EXPECT_TRUE(Table::UnorderedEquals(**result, *baseline, 1e-6, &diff))
        << name << ": " << diff << "\nSQL:\n"
        << compiled->sql;
  }

  Session session_;
};

TEST_F(DatasciTest, CrimeIndex) {
  CheckAgainstBaseline(workloads::datasci::CrimeIndexSource(), "CrimeIndex");
}

TEST_F(DatasciTest, BirthAnalysis) {
  CheckAgainstBaseline(workloads::datasci::BirthAnalysisSource(),
                       "BirthAnalysis");
}

TEST_F(DatasciTest, N3) {
  CheckAgainstBaseline(workloads::datasci::N3Source(), "N3");
}

TEST_F(DatasciTest, N9) {
  CheckAgainstBaseline(workloads::datasci::N9Source(), "N9");
}

TEST_F(DatasciTest, HybridMatMul) {
  CheckAgainstBaseline(workloads::datasci::HybridMatMulSource(false),
                       "HybridMatMul");
}

TEST_F(DatasciTest, HybridMatMulFiltered) {
  CheckAgainstBaseline(workloads::datasci::HybridMatMulSource(true),
                       "HybridMatMulFiltered");
}

TEST_F(DatasciTest, HybridCovar) {
  CheckAgainstBaseline(workloads::datasci::HybridCovarSource(false),
                       "HybridCovar");
}

TEST_F(DatasciTest, HybridCovarFiltered) {
  CheckAgainstBaseline(workloads::datasci::HybridCovarSource(true),
                       "HybridCovarFiltered");
}

TEST(CovarianceTest, DenseAndSparseLayoutsAgree) {
  Session session;
  ASSERT_TRUE(workloads::datasci::PopulateCovariance(&session.db(), 500, 8,
                                                     0.3)
                  .ok());
  auto dense = session.Run(workloads::datasci::CovarDenseSource());
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  auto sparse = session.Run(workloads::datasci::CovarSparseSource());
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
  // Dense result: 8x8 matrix (id + 8 cols). Sparse result: COO triples.
  ASSERT_EQ((*dense)->num_rows(), 8u);
  // Spot-check: every sparse entry matches the dense cell.
  const Table& d = **dense;
  const Table& s = **sparse;
  for (size_t i = 0; i < s.num_rows(); ++i) {
    int64_t r = s.column(0).Get(i).AsInt64();
    int64_t c = s.column(1).Get(i).AsInt64();
    double v = s.column(2).Get(i).ToDouble();
    double dv = d.column(static_cast<size_t>(c) + 1)
                    .Get(static_cast<size_t>(r))
                    .ToDouble();
    EXPECT_NEAR(v, dv, 1e-6) << "cell (" << r << "," << c << ")";
  }
}

TEST(CovarianceTest, EagerSparseMatchesEagerDense) {
  Session session;
  ASSERT_TRUE(workloads::datasci::PopulateCovariance(&session.db(), 300, 4,
                                                     0.5)
                  .ok());
  auto dense = session.RunBaseline(workloads::datasci::CovarDenseSource());
  ASSERT_TRUE(dense.ok());
  auto sparse = session.RunBaseline(workloads::datasci::CovarSparseSource());
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
  for (size_t i = 0; i < sparse->num_rows(); ++i) {
    int64_t r = sparse->column(0).Get(i).AsInt64();
    int64_t c = sparse->column(1).Get(i).AsInt64();
    double v = sparse->column(2).Get(i).ToDouble();
    double dv = dense->column(static_cast<size_t>(c) + 1)
                    .Get(static_cast<size_t>(r))
                    .ToDouble();
    EXPECT_NEAR(v, dv, 1e-6);
  }
}

}  // namespace
}  // namespace pytond
