#include <gtest/gtest.h>

#include "tondir/ir.h"

namespace pytond::tondir {
namespace {

TEST(TermTest, BuildAndPrint) {
  TermPtr t = Term::Binary(BinOp::kMul, Term::Var("a"),
                           Term::Const(Value::Int64(2)));
  EXPECT_EQ(TermToString(*t), "(a * 2)");
  TermPtr agg = Term::Agg(AggFn::kSum, Term::Var("b"));
  EXPECT_EQ(TermToString(*agg), "sum(b)");
  TermPtr iff = Term::If(Term::Var("c"), Term::Const(Value::Int64(1)),
                         Term::Const(Value::Int64(0)));
  EXPECT_EQ(TermToString(*iff), "if(c, 1, 0)");
}

TEST(TermTest, CollectVarsAndContainsAgg) {
  TermPtr t = Term::If(Term::Var("c"), Term::Agg(AggFn::kMax, Term::Var("x")),
                       Term::Var("y"));
  std::set<std::string> vars;
  t->CollectVars(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"c", "x", "y"}));
  EXPECT_TRUE(t->ContainsAgg());
  EXPECT_FALSE(Term::Var("z")->ContainsAgg());
}

TEST(TermTest, SubstituteReplacesVariables) {
  TermPtr t = Term::Binary(BinOp::kAdd, Term::Var("a"), Term::Var("b"));
  std::map<std::string, TermPtr> subst = {
      {"a", Term::Binary(BinOp::kMul, Term::Var("x"), Term::Var("y"))}};
  TermPtr out = Term::Substitute(t, subst);
  EXPECT_EQ(TermToString(*out), "((x * y) + b)");
  // Original unchanged.
  EXPECT_EQ(TermToString(*t), "(a + b)");
}

TEST(AtomTest, PrintForms) {
  EXPECT_EQ(AtomToString(Atom::RelAccess("R", {"a", "b"})), "R(a, b)");
  EXPECT_EQ(AtomToString(Atom::Compare("x", CmpOp::kGt,
                                       Term::Const(Value::Int64(10)))),
            "(x > 10)");
  EXPECT_EQ(AtomToString(Atom::ConstRel(
                "c0", {Value::Int64(0), Value::Int64(1)})),
            "(c0 = [0, 1])");
  EXPECT_EQ(AtomToString(Atom::External("outer_left", {"a", "b"})),
            "@outer_left(a, b)");
}

TEST(AtomTest, DefinedVarsDistinguishAssignmentFromComparison) {
  Atom assign = Atom::Compare("s", CmpOp::kEq, Term::Var("b"));
  std::set<std::string> defined = {"b"};
  std::set<std::string> out = defined;
  assign.CollectDefinedVars(defined, &out);
  EXPECT_TRUE(out.count("s"));  // fresh var: assignment

  std::set<std::string> defined2 = {"s", "b"};
  Atom cmp = Atom::Compare("s", CmpOp::kEq, Term::Var("b"));
  std::set<std::string> out2;
  cmp.CollectDefinedVars(defined2, &out2);
  EXPECT_FALSE(out2.count("s"));  // already defined: equality filter
}

TEST(RuleTest, Predicates) {
  Rule r = *ParseRule("R(a, s) group(a) :- T(a, b), (s = sum(b)).");
  EXPECT_TRUE(r.HasAggregate());
  EXPECT_FALSE(r.HasJoin());
  Rule j = *ParseRule("R(a) :- T(a, x), U(x, c).");
  EXPECT_TRUE(j.HasJoin());
  EXPECT_FALSE(j.HasAggregate());
  Rule o = *ParseRule("R(a, b) :- T(a), U(b), @outer_left(a, b).");
  EXPECT_TRUE(o.HasOuterMarker());
}

TEST(ParserTest, RoundTripSimpleRule) {
  const char* text = "R(a, s) group(a) :- T(a, b, c), (a < 10), (s = sum(b)).";
  auto r = ParseRule(text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(RuleToString(*r),
            "R(a, s) group(a) :- T(a, b, c), (a < 10), (s = sum(b)).");
}

TEST(ParserTest, SortLimitDistinct) {
  auto r = ParseRule(
      "R(a, b) sort(a desc, b) limit(10) distinct :- T(a, b).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->head.sort_keys.size(), 2u);
  EXPECT_FALSE(r->head.sort_keys[0].ascending);
  EXPECT_TRUE(r->head.sort_keys[1].ascending);
  EXPECT_EQ(*r->head.limit, 10);
  EXPECT_TRUE(r->head.distinct);
}

TEST(ParserTest, ExistsAndNegation) {
  auto r = ParseRule("R(a) :- T(a), !exists(U(a, x), (x > 5)).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->body.size(), 2u);
  EXPECT_EQ(r->body[1].kind, Atom::Kind::kExists);
  EXPECT_TRUE(r->body[1].negated);
  EXPECT_EQ(r->body[1].exists_body->size(), 2u);
}

TEST(ParserTest, ConstRelAndStrings) {
  auto r = ParseRule("R(c) :- (c = [0, 1, 2]), (d = \"hi\").");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->body[0].kind, Atom::Kind::kConstRel);
  EXPECT_EQ(r->body[0].const_values.size(), 3u);
  EXPECT_EQ(r->body[1].term->constant.AsString(), "hi");
}

TEST(ParserTest, ProgramWithMultipleRules) {
  auto p = ParseProgram(R"(
    # comment line
    R1(a, b) :- T(a, b, c), (a > 1000).
    R2(b, m) group(b) :- R1(a, b), (m = max(a)).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules.size(), 2u);
  EXPECT_EQ(p->rules[1].head.group_vars, std::vector<std::string>{"b"});
}

TEST(ParserTest, IfAndExternalTerms) {
  auto r = ParseRule("R(x, u) :- T(a, b), (x = if(a, b, 0)), (u = uid()).");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->body[1].term->kind, Term::Kind::kIf);
  EXPECT_EQ(r->body[2].term->kind, Term::Kind::kExt);
  EXPECT_EQ(r->body[2].term->ext_name, "uid");
}

TEST(ValidateTest, AcceptsWellFormed) {
  auto p = ParseProgram(
      "R1(a) :- T(a, b).\n"
      "R2(a) :- R1(a).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Validate({"T"}).ok());
}

TEST(ValidateTest, RejectsUndefinedRelation) {
  auto p = ParseProgram("R1(a) :- Missing(a).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->Validate({"T"}).ok());
}

TEST(ValidateTest, RejectsUndefinedHeadVar) {
  auto p = ParseProgram("R1(zz) :- T(a, b).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->Validate({"T"}).ok());
}

TEST(ProgramTest, ReaderIndex) {
  auto p = ParseProgram(
      "R1(a) :- T(a, b).\n"
      "R2(a) :- R1(a), T(a, c).\n"
      "R3(a) :- R1(a), exists(U(a)).\n");
  ASSERT_TRUE(p.ok());
  auto readers = p->BuildReaderIndex();
  EXPECT_EQ(readers["R1"], (std::vector<size_t>{1, 2}));
  EXPECT_EQ(readers["T"], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(readers["U"], (std::vector<size_t>{2}));
}

TEST(CloneTest, DeepCopyIsIndependent) {
  Rule r = *ParseRule("R(a) :- T(a, b), (a > 1).");
  Rule c = r.CloneRule();
  c.body[1].term = Term::Const(Value::Int64(99));
  EXPECT_EQ(TermToString(*r.body[1].term), "1");
}

}  // namespace
}  // namespace pytond::tondir
